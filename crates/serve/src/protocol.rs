//! The framed wire protocol of `lhmm-serve`.
//!
//! Every message travels as one length-prefixed frame over a byte stream
//! (TCP in production, any `Read`/`Write` pair in tests):
//!
//! ```text
//! frame    := len:u32le  payload               (len = payload byte count)
//! payload  := tag:u8  body
//!
//! client → server
//!   0x01 ONESHOT  body := traj
//!   0x02 OPEN     body := client:u64le  lag:u32le  version:u32le
//!   0x03 PUSH     body := client:u64le  point
//!   0x04 FINISH   body := client:u64le
//!   0x05 PING     body := (empty)               (cluster health plane)
//!   0x06 SNAPSHOT body := client:u64le          (capture + evict session)
//!   0x07 RESTORE  body := client:u64le  version:u32le  state
//!   0x08 SWAP     body := version:u32le         (0 = rollback)
//!   0x09 SHADOW   body := version:u32le  mirror_every:u32le  (version 0 = off)
//!   0x0A VERSIONS body := (empty)               (registry listing)
//!   0x0B REFRESH  body := (empty)               (fold stats, register candidate)
//!
//! server → client
//!   0x81 ROUTE    body := degraded:u8  n:u32le  n × seg:u32le
//!   0x82 PUSHED   body := committed:u32le
//!   0x83 REJECT   body := reason:u8            (admission control)
//!   0x84 FAILED   body := code:u8  a:u32le  b:u32le  (typed MatchError)
//!   0x85 PONG     body := sessions:u32le
//!   0x86 STATE    body := state
//!   0x87 MODELS   body := active:u32le  previous:u32le  shadow:u32le
//!                         mirror_every:u32le  refreshed:u32le
//!                         n:u32le  n × manifest
//!
//! manifest := version:u32le  parent:u32le  fingerprint:u64le
//!             weight_bytes:u64le  label_len:u32le  label (utf-8)
//!
//! The model plane (OPEN/RESTORE version fields, SWAP/SHADOW/VERSIONS/
//! REFRESH and MODELS) uses 0 as the "currently active version" / "none"
//! sentinel throughout — real registry versions start at 1.
//!
//! point := tower:u32le  x:f64le  y:f64le  t:f64le
//!          smoothed:u8  [sx:f64le  sy:f64le]   (present iff smoothed = 1)
//! traj  := n:u32le  n × point
//!
//! state := version:u8 (= 1)  lag:u32le  n:u32le  n × layer
//!          committed_upto:u32le  k:u32le  k × seg:u32le
//!          lc:u8  [seg:u32le  t:f64le  obs:f64le]   (present iff lc = 1)
//!          4 × u64le                                (degradation counters)
//! layer := x:f64le  y:f64le  t:f64le  m:u32le
//!          m × (seg:u32le  ct:f64le  obs:f64le)
//!          m × f:f64le
//!          m × pre:u32le                    (0xffff_ffff encodes "none")
//! ```
//!
//! All integers are little-endian; floats are IEEE-754 bit patterns, so a
//! round trip is bit-exact — the loopback equivalence tests depend on
//! matching the *same* trajectory the client held. Frames are capped at
//! [`MAX_FRAME`]; an oversized or malformed frame is a protocol error, not
//! a panic.

use crate::admission::RejectReason;
use lhmm_cellsim::tower::TowerId;
use lhmm_cellsim::traj::{CellularPoint, CellularTrajectory};
use lhmm_core::error::{Degradation, MatchError};
use lhmm_core::registry::{ModelManifest, ModelVersion};
use lhmm_core::streaming::BeamState;
use lhmm_core::types::Candidate;
use lhmm_geo::Point;
use lhmm_network::graph::SegmentId;
use std::fmt;
use std::io::{self, Read, Write};

/// Maximum frame payload size in bytes (16 MiB ≈ 400k trajectory points):
/// a decoding bound against hostile or corrupt length prefixes.
pub const MAX_FRAME: u32 = 16 * 1024 * 1024;

/// Version byte leading every beam-state body. Bumped on any layout
/// change; a decoder seeing a different version refuses the frame with a
/// typed error instead of misreading it.
pub const BEAM_STATE_VERSION: u8 = 1;

/// Anything that can go wrong while reading or writing frames.
#[derive(Debug)]
pub enum WireError {
    /// Underlying transport error (includes clean EOF mid-frame).
    Io(io::Error),
    /// Structurally invalid payload (unknown tag, short body, bad flag).
    Malformed(&'static str),
    /// Declared frame length exceeds [`MAX_FRAME`].
    TooLarge(u32),
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::Io(e) => write!(f, "wire i/o: {e}"),
            WireError::Malformed(what) => write!(f, "malformed frame: {what}"),
            WireError::TooLarge(n) => {
                write!(f, "frame of {n} bytes exceeds the {MAX_FRAME}-byte cap")
            }
        }
    }
}

impl std::error::Error for WireError {}

impl From<io::Error> for WireError {
    fn from(e: io::Error) -> Self {
        WireError::Io(e)
    }
}

/// A client-to-server message.
#[derive(Clone, Debug)]
pub enum Request {
    /// Match a complete trajectory through the micro-batch scheduler.
    OneShot {
        /// The trajectory to match.
        traj: CellularTrajectory,
    },
    /// Open (or reopen) a streaming session for `client`.
    Open {
        /// Session key.
        client: u64,
        /// Fixed commit lag in observations.
        lag: u32,
        /// Registry model version to pin the session to; 0 pins whatever
        /// is active at admission. The session serves this version until
        /// it finishes, across any number of hot swaps.
        version: u32,
    },
    /// Feed one observation into `client`'s streaming session.
    Push {
        /// Session key.
        client: u64,
        /// The observation.
        point: CellularPoint,
    },
    /// Finalize `client`'s session and return the complete route.
    Finish {
        /// Session key.
        client: u64,
    },
    /// Liveness probe (cluster health plane). Answered with
    /// [`Response::Pong`] without touching any session.
    Ping,
    /// Capture `client`'s streaming session as a [`BeamState`] and evict
    /// it — the take side of a tile handoff. Answered with
    /// [`Response::State`].
    Snapshot {
        /// Session key.
        client: u64,
    },
    /// Re-admit a previously captured session under `client` — the give
    /// side of a tile handoff (or crash re-admission).
    Restore {
        /// Session key.
        client: u64,
        /// Registry model version the session was pinned to (0 = pin the
        /// active version on re-admission). Carrying the explicit version
        /// across handoffs is what keeps a session on one model even when
        /// it migrates between shards mid-swap.
        version: u32,
        /// The captured session state.
        state: BeamState,
    },
    /// Atomically swap the active model version: promote `version`, or
    /// roll back to the previous version when `version` is 0. Answered
    /// with [`Response::Models`].
    Swap {
        /// Version to promote; 0 requests a rollback.
        version: u32,
    },
    /// Arm (or disarm) shadow A/B serving: mirror every `mirror_every`-th
    /// one-shot admission through candidate `version`; `version` 0
    /// disarms. Answered with [`Response::Models`].
    Shadow {
        /// Candidate version to mirror through; 0 disarms.
        version: u32,
        /// Mirror cadence (every Nth admission; clamped to ≥ 1).
        mirror_every: u32,
    },
    /// List the model registry. Answered with [`Response::Models`].
    Versions,
    /// Drain the accumulated refresh statistics into a re-derived model,
    /// registered as a new candidate version (not promoted). Answered
    /// with [`Response::Models`]; `refreshed` is 0 when no statistics had
    /// accumulated.
    Refresh,
}

/// Compact wire form of a [`MatchError`] (code + two operands).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct WireMatchError {
    /// 0 = EmptyTrajectory, 1 = NoCandidates, 2 = LayerMismatch,
    /// 3 = EmptyLayer.
    pub code: u8,
    /// First operand (points / layer index).
    pub a: u32,
    /// Second operand (layers).
    pub b: u32,
}

impl From<&MatchError> for WireMatchError {
    fn from(e: &MatchError) -> Self {
        match e {
            MatchError::EmptyTrajectory => WireMatchError { code: 0, a: 0, b: 0 },
            MatchError::NoCandidates => WireMatchError { code: 1, a: 0, b: 0 },
            MatchError::LayerMismatch { points, layers } => WireMatchError {
                code: 2,
                a: *points as u32,
                b: *layers as u32,
            },
            MatchError::EmptyLayer { layer } => WireMatchError {
                code: 3,
                a: *layer as u32,
                b: 0,
            },
        }
    }
}

impl WireMatchError {
    /// Reconstructs the typed error (round-trips with `From<&MatchError>`).
    pub fn to_match_error(self) -> Option<MatchError> {
        match self.code {
            0 => Some(MatchError::EmptyTrajectory),
            1 => Some(MatchError::NoCandidates),
            2 => Some(MatchError::LayerMismatch {
                points: self.a as usize,
                layers: self.b as usize,
            }),
            3 => Some(MatchError::EmptyLayer {
                layer: self.a as usize,
            }),
            _ => None,
        }
    }
}

/// A server-to-client message.
#[derive(Clone, Debug, PartialEq)]
pub enum Response {
    /// A matched route (one-shot result, or the final route of a session).
    Route {
        /// Matched segment sequence.
        segments: Vec<SegmentId>,
        /// True when the match degraded (dropped points, glued gaps,
        /// clamped scores) — best-effort result.
        degraded: bool,
    },
    /// A streaming push was absorbed; `committed` observations were fixed.
    Pushed {
        /// Newly committed observation count.
        committed: u32,
    },
    /// The request was shed by admission control.
    Reject(RejectReason),
    /// Matching failed with a typed error.
    Failed(WireMatchError),
    /// Liveness answer: the shard is up and holds `sessions` sessions.
    Pong {
        /// Live session count at the instant of the probe.
        sessions: u32,
    },
    /// A captured session state (answer to [`Request::Snapshot`]).
    State {
        /// The captured session state.
        state: BeamState,
    },
    /// A registry snapshot (answer to the model-plane requests).
    Models {
        /// The active version.
        active: u32,
        /// The rollback target (0 = none recorded yet).
        previous: u32,
        /// The armed shadow candidate (0 = shadow off).
        shadow: u32,
        /// Shadow mirror cadence (0 when shadow is off).
        mirror_every: u32,
        /// Version a just-run refresh registered (0 on listings, swaps,
        /// and refreshes that found no statistics).
        refreshed: u32,
        /// Every registered manifest, in version order.
        manifests: Vec<ModelManifest>,
    },
}

const TAG_ONESHOT: u8 = 0x01;
const TAG_OPEN: u8 = 0x02;
const TAG_PUSH: u8 = 0x03;
const TAG_FINISH: u8 = 0x04;
const TAG_PING: u8 = 0x05;
const TAG_SNAPSHOT: u8 = 0x06;
const TAG_RESTORE: u8 = 0x07;
const TAG_SWAP: u8 = 0x08;
const TAG_SHADOW: u8 = 0x09;
const TAG_VERSIONS: u8 = 0x0a;
const TAG_REFRESH: u8 = 0x0b;
const TAG_ROUTE: u8 = 0x81;
const TAG_PUSHED: u8 = 0x82;
const TAG_REJECT: u8 = 0x83;
const TAG_FAILED: u8 = 0x84;
const TAG_PONG: u8 = 0x85;
const TAG_STATE: u8 = 0x86;
const TAG_MODELS: u8 = 0x87;

/// Decoding bound on manifest labels (matches the registry's own cap).
const MAX_WIRE_LABEL: usize = 4096;

// ---- encoding helpers ------------------------------------------------

fn put_u32(buf: &mut Vec<u8>, v: u32) {
    buf.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(buf: &mut Vec<u8>, v: u64) {
    buf.extend_from_slice(&v.to_le_bytes());
}

fn put_f64(buf: &mut Vec<u8>, v: f64) {
    buf.extend_from_slice(&v.to_bits().to_le_bytes());
}

fn put_u64_counter(buf: &mut Vec<u8>, v: u64) {
    buf.extend_from_slice(&v.to_le_bytes());
}

/// Sentinel encoding `None` in backpointer arrays. Real backpointers index
/// a candidate layer and are far below it (layers are bounded by the frame
/// cap alone).
const PRE_NONE: u32 = u32::MAX;

fn put_beam_state(buf: &mut Vec<u8>, s: &BeamState) {
    buf.push(BEAM_STATE_VERSION);
    put_u32(buf, s.lag as u32);
    put_u32(buf, s.layers.len() as u32);
    for (i, layer) in s.layers.iter().enumerate() {
        let (p, t) = s.pts[i];
        put_f64(buf, p.x);
        put_f64(buf, p.y);
        put_f64(buf, t);
        put_u32(buf, layer.len() as u32);
        for c in layer {
            put_u32(buf, c.seg.0);
            put_f64(buf, c.t);
            put_f64(buf, c.obs);
        }
        for &v in &s.f[i] {
            put_f64(buf, v);
        }
        for &p in &s.pre[i] {
            put_u32(buf, p.map_or(PRE_NONE, |j| j as u32));
        }
    }
    put_u32(buf, s.committed_upto as u32);
    put_u32(buf, s.committed.len() as u32);
    for seg in &s.committed {
        put_u32(buf, seg.0);
    }
    match s.last_committed {
        Some(c) => {
            buf.push(1);
            put_u32(buf, c.seg.0);
            put_f64(buf, c.t);
            put_f64(buf, c.obs);
        }
        None => buf.push(0),
    }
    put_u64_counter(buf, s.degradation.dropped_points);
    put_u64_counter(buf, s.degradation.disconnected_joins);
    put_u64_counter(buf, s.degradation.clamped_scores);
    put_u64_counter(buf, s.degradation.failed_matches);
}

fn put_point(buf: &mut Vec<u8>, p: &CellularPoint) {
    put_u32(buf, p.tower.0);
    put_f64(buf, p.pos.x);
    put_f64(buf, p.pos.y);
    put_f64(buf, p.t);
    match p.smoothed {
        Some(s) => {
            buf.push(1);
            put_f64(buf, s.x);
            put_f64(buf, s.y);
        }
        None => buf.push(0),
    }
}

/// Decodes one beam-state body, enforcing the version byte and the
/// structural invariants of [`BeamState::validate`] so a corrupted or
/// hostile frame surfaces as [`WireError::Malformed`], never as a panic or
/// an engine-corrupting state.
fn read_beam_state(c: &mut Cursor<'_>) -> Result<BeamState, WireError> {
    if c.u8()? != BEAM_STATE_VERSION {
        return Err(WireError::Malformed("unsupported beam-state version"));
    }
    let lag = c.u32()? as usize;
    let n = c.u32()? as usize;
    let mut layers = Vec::with_capacity(n.min(65_536));
    let mut pts = Vec::with_capacity(n.min(65_536));
    let mut f = Vec::with_capacity(n.min(65_536));
    let mut pre = Vec::with_capacity(n.min(65_536));
    for _ in 0..n {
        let x = c.f64()?;
        let y = c.f64()?;
        let t = c.f64()?;
        pts.push((Point::new(x, y), t));
        let m = c.u32()? as usize;
        let mut layer = Vec::with_capacity(m.min(65_536));
        for _ in 0..m {
            layer.push(Candidate {
                seg: SegmentId(c.u32()?),
                t: c.f64()?,
                obs: c.f64()?,
            });
        }
        let mut fi = Vec::with_capacity(m.min(65_536));
        for _ in 0..m {
            fi.push(c.f64()?);
        }
        let mut pi = Vec::with_capacity(m.min(65_536));
        for _ in 0..m {
            let v = c.u32()?;
            pi.push(if v == PRE_NONE { None } else { Some(v as usize) });
        }
        layers.push(layer);
        f.push(fi);
        pre.push(pi);
    }
    let committed_upto = c.u32()? as usize;
    let k = c.u32()? as usize;
    let mut committed = Vec::with_capacity(k.min(1 << 20));
    for _ in 0..k {
        committed.push(SegmentId(c.u32()?));
    }
    let last_committed = match c.u8()? {
        0 => None,
        1 => Some(Candidate {
            seg: SegmentId(c.u32()?),
            t: c.f64()?,
            obs: c.f64()?,
        }),
        _ => return Err(WireError::Malformed("last-committed flag not 0/1")),
    };
    let degradation = Degradation {
        dropped_points: c.u64()?,
        disconnected_joins: c.u64()?,
        clamped_scores: c.u64()?,
        failed_matches: c.u64()?,
    };
    let state = BeamState {
        lag,
        layers,
        pts,
        f,
        pre,
        committed_upto,
        committed,
        last_committed,
        degradation,
    };
    state.validate().map_err(|e| WireError::Malformed(e.0))?;
    Ok(state)
}

/// A cursor over one frame's payload.
struct Cursor<'a> {
    buf: &'a [u8],
    at: usize,
}

impl<'a> Cursor<'a> {
    fn new(buf: &'a [u8]) -> Self {
        Cursor { buf, at: 0 }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], WireError> {
        let end = self
            .at
            .checked_add(n)
            .filter(|&e| e <= self.buf.len())
            .ok_or(WireError::Malformed("body shorter than declared"))?;
        let s = &self.buf[self.at..end];
        self.at = end;
        Ok(s)
    }

    fn u8(&mut self) -> Result<u8, WireError> {
        Ok(self.take(1)?[0])
    }

    fn u32(&mut self) -> Result<u32, WireError> {
        let mut b = [0u8; 4];
        b.copy_from_slice(self.take(4)?);
        Ok(u32::from_le_bytes(b))
    }

    fn u64(&mut self) -> Result<u64, WireError> {
        let mut b = [0u8; 8];
        b.copy_from_slice(self.take(8)?);
        Ok(u64::from_le_bytes(b))
    }

    fn f64(&mut self) -> Result<f64, WireError> {
        Ok(f64::from_bits(self.u64()?))
    }

    fn point(&mut self) -> Result<CellularPoint, WireError> {
        let tower = TowerId(self.u32()?);
        let x = self.f64()?;
        let y = self.f64()?;
        let t = self.f64()?;
        let smoothed = match self.u8()? {
            0 => None,
            1 => Some(Point::new(self.f64()?, self.f64()?)),
            _ => return Err(WireError::Malformed("smoothed flag not 0/1")),
        };
        Ok(CellularPoint {
            tower,
            pos: Point::new(x, y),
            t,
            smoothed,
        })
    }

    fn finish(self) -> Result<(), WireError> {
        if self.at == self.buf.len() {
            Ok(())
        } else {
            Err(WireError::Malformed("trailing bytes after body"))
        }
    }
}

fn write_frame<W: Write>(w: &mut W, payload: &[u8]) -> Result<(), WireError> {
    let len = u32::try_from(payload.len()).map_err(|_| WireError::TooLarge(u32::MAX))?;
    if len > MAX_FRAME {
        return Err(WireError::TooLarge(len));
    }
    w.write_all(&len.to_le_bytes())?;
    w.write_all(payload)?;
    w.flush()?;
    Ok(())
}

fn read_frame<R: Read>(r: &mut R) -> Result<Vec<u8>, WireError> {
    let mut len_buf = [0u8; 4];
    r.read_exact(&mut len_buf)?;
    let len = u32::from_le_bytes(len_buf);
    if len > MAX_FRAME {
        return Err(WireError::TooLarge(len));
    }
    let mut payload = vec![0u8; len as usize];
    r.read_exact(&mut payload)?;
    Ok(payload)
}

/// Serializes one request as a frame.
pub fn write_request<W: Write>(w: &mut W, req: &Request) -> Result<(), WireError> {
    let mut buf = Vec::new();
    match req {
        Request::OneShot { traj } => {
            buf.push(TAG_ONESHOT);
            put_u32(&mut buf, traj.points.len() as u32);
            for p in &traj.points {
                put_point(&mut buf, p);
            }
        }
        Request::Open { client, lag, version } => {
            buf.push(TAG_OPEN);
            put_u64(&mut buf, *client);
            put_u32(&mut buf, *lag);
            put_u32(&mut buf, *version);
        }
        Request::Push { client, point } => {
            buf.push(TAG_PUSH);
            put_u64(&mut buf, *client);
            put_point(&mut buf, point);
        }
        Request::Finish { client } => {
            buf.push(TAG_FINISH);
            put_u64(&mut buf, *client);
        }
        Request::Ping => buf.push(TAG_PING),
        Request::Snapshot { client } => {
            buf.push(TAG_SNAPSHOT);
            put_u64(&mut buf, *client);
        }
        Request::Restore {
            client,
            version,
            state,
        } => {
            state.validate().map_err(|e| WireError::Malformed(e.0))?;
            buf.push(TAG_RESTORE);
            put_u64(&mut buf, *client);
            put_u32(&mut buf, *version);
            put_beam_state(&mut buf, state);
        }
        Request::Swap { version } => {
            buf.push(TAG_SWAP);
            put_u32(&mut buf, *version);
        }
        Request::Shadow {
            version,
            mirror_every,
        } => {
            buf.push(TAG_SHADOW);
            put_u32(&mut buf, *version);
            put_u32(&mut buf, *mirror_every);
        }
        Request::Versions => buf.push(TAG_VERSIONS),
        Request::Refresh => buf.push(TAG_REFRESH),
    }
    write_frame(w, &buf)
}

/// Reads and decodes one request frame.
pub fn read_request<R: Read>(r: &mut R) -> Result<Request, WireError> {
    let payload = read_frame(r)?;
    let mut c = Cursor::new(&payload);
    let tag = c.u8()?;
    let req = match tag {
        TAG_ONESHOT => {
            let n = c.u32()? as usize;
            let mut points = Vec::with_capacity(n.min(65_536));
            for _ in 0..n {
                points.push(c.point()?);
            }
            Request::OneShot {
                traj: CellularTrajectory { points },
            }
        }
        TAG_OPEN => Request::Open {
            client: c.u64()?,
            lag: c.u32()?,
            version: c.u32()?,
        },
        TAG_PUSH => Request::Push {
            client: c.u64()?,
            point: c.point()?,
        },
        TAG_FINISH => Request::Finish { client: c.u64()? },
        TAG_PING => Request::Ping,
        TAG_SNAPSHOT => Request::Snapshot { client: c.u64()? },
        TAG_RESTORE => Request::Restore {
            client: c.u64()?,
            version: c.u32()?,
            state: read_beam_state(&mut c)?,
        },
        TAG_SWAP => Request::Swap { version: c.u32()? },
        TAG_SHADOW => Request::Shadow {
            version: c.u32()?,
            mirror_every: c.u32()?,
        },
        TAG_VERSIONS => Request::Versions,
        TAG_REFRESH => Request::Refresh,
        _ => return Err(WireError::Malformed("unknown request tag")),
    };
    c.finish()?;
    Ok(req)
}

/// Serializes one response as a frame.
pub fn write_response<W: Write>(w: &mut W, resp: &Response) -> Result<(), WireError> {
    let mut buf = Vec::new();
    match resp {
        Response::Route { segments, degraded } => {
            buf.push(TAG_ROUTE);
            buf.push(u8::from(*degraded));
            put_u32(&mut buf, segments.len() as u32);
            for s in segments {
                put_u32(&mut buf, s.0);
            }
        }
        Response::Pushed { committed } => {
            buf.push(TAG_PUSHED);
            put_u32(&mut buf, *committed);
        }
        Response::Reject(reason) => {
            buf.push(TAG_REJECT);
            buf.push(reason.code());
        }
        Response::Failed(e) => {
            buf.push(TAG_FAILED);
            buf.push(e.code);
            put_u32(&mut buf, e.a);
            put_u32(&mut buf, e.b);
        }
        Response::Pong { sessions } => {
            buf.push(TAG_PONG);
            put_u32(&mut buf, *sessions);
        }
        Response::State { state } => {
            state.validate().map_err(|e| WireError::Malformed(e.0))?;
            buf.push(TAG_STATE);
            put_beam_state(&mut buf, state);
        }
        Response::Models {
            active,
            previous,
            shadow,
            mirror_every,
            refreshed,
            manifests,
        } => {
            buf.push(TAG_MODELS);
            put_u32(&mut buf, *active);
            put_u32(&mut buf, *previous);
            put_u32(&mut buf, *shadow);
            put_u32(&mut buf, *mirror_every);
            put_u32(&mut buf, *refreshed);
            put_u32(&mut buf, manifests.len() as u32);
            for m in manifests {
                if m.label.len() > MAX_WIRE_LABEL {
                    return Err(WireError::Malformed("manifest label too long"));
                }
                put_u32(&mut buf, m.version.0);
                put_u32(&mut buf, m.parent.map_or(0, |p| p.0));
                put_u64(&mut buf, m.fingerprint);
                put_u64(&mut buf, m.weight_bytes);
                put_u32(&mut buf, m.label.len() as u32);
                buf.extend_from_slice(m.label.as_bytes());
            }
        }
    }
    write_frame(w, &buf)
}

/// Reads and decodes one response frame.
pub fn read_response<R: Read>(r: &mut R) -> Result<Response, WireError> {
    let payload = read_frame(r)?;
    let mut c = Cursor::new(&payload);
    let tag = c.u8()?;
    let resp = match tag {
        TAG_ROUTE => {
            let degraded = match c.u8()? {
                0 => false,
                1 => true,
                _ => return Err(WireError::Malformed("degraded flag not 0/1")),
            };
            let n = c.u32()? as usize;
            let mut segments = Vec::with_capacity(n.min(1 << 20));
            for _ in 0..n {
                segments.push(SegmentId(c.u32()?));
            }
            Response::Route { segments, degraded }
        }
        TAG_PUSHED => Response::Pushed {
            committed: c.u32()?,
        },
        TAG_REJECT => {
            let reason = RejectReason::from_code(c.u8()?)
                .ok_or(WireError::Malformed("unknown reject reason"))?;
            Response::Reject(reason)
        }
        TAG_FAILED => Response::Failed(WireMatchError {
            code: c.u8()?,
            a: c.u32()?,
            b: c.u32()?,
        }),
        TAG_PONG => Response::Pong {
            sessions: c.u32()?,
        },
        TAG_STATE => Response::State {
            state: read_beam_state(&mut c)?,
        },
        TAG_MODELS => {
            let active = c.u32()?;
            let previous = c.u32()?;
            let shadow = c.u32()?;
            let mirror_every = c.u32()?;
            let refreshed = c.u32()?;
            let n = c.u32()? as usize;
            let mut manifests = Vec::with_capacity(n.min(4096));
            for _ in 0..n {
                let version = c.u32()?;
                let parent = c.u32()?;
                let fingerprint = c.u64()?;
                let weight_bytes = c.u64()?;
                let label_len = c.u32()? as usize;
                if label_len > MAX_WIRE_LABEL {
                    return Err(WireError::Malformed("manifest label too long"));
                }
                let label = std::str::from_utf8(c.take(label_len)?)
                    .map_err(|_| WireError::Malformed("manifest label not utf-8"))?
                    .to_string();
                manifests.push(ModelManifest {
                    version: ModelVersion(version),
                    parent: (parent != 0).then_some(ModelVersion(parent)),
                    fingerprint,
                    weight_bytes,
                    label,
                });
            }
            Response::Models {
                active,
                previous,
                shadow,
                mirror_every,
                refreshed,
                manifests,
            }
        }
        _ => return Err(WireError::Malformed("unknown response tag")),
    };
    c.finish()?;
    Ok(resp)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_traj() -> CellularTrajectory {
        CellularTrajectory {
            points: vec![
                CellularPoint {
                    tower: TowerId(7),
                    pos: Point::new(120.5, -3.25),
                    t: 0.0,
                    smoothed: None,
                },
                CellularPoint {
                    tower: TowerId(9),
                    pos: Point::new(220.0, 14.0),
                    t: 30.0,
                    smoothed: Some(Point::new(200.0, 10.0)),
                },
            ],
        }
    }

    fn roundtrip_request(req: Request) -> Request {
        let mut buf = Vec::new();
        write_request(&mut buf, &req).expect("encode");
        read_request(&mut &buf[..]).expect("decode")
    }

    fn roundtrip_response(resp: Response) -> Response {
        let mut buf = Vec::new();
        write_response(&mut buf, &resp).expect("encode");
        read_response(&mut &buf[..]).expect("decode")
    }

    #[test]
    fn requests_roundtrip_bit_exact() {
        let traj = sample_traj();
        match roundtrip_request(Request::OneShot { traj: traj.clone() }) {
            Request::OneShot { traj: got } => {
                assert_eq!(got.points.len(), traj.points.len());
                for (a, b) in got.points.iter().zip(&traj.points) {
                    assert_eq!(a.tower, b.tower);
                    assert_eq!(a.pos.x.to_bits(), b.pos.x.to_bits());
                    assert_eq!(a.pos.y.to_bits(), b.pos.y.to_bits());
                    assert_eq!(a.t.to_bits(), b.t.to_bits());
                    assert_eq!(
                        a.smoothed.map(|p| (p.x.to_bits(), p.y.to_bits())),
                        b.smoothed.map(|p| (p.x.to_bits(), p.y.to_bits()))
                    );
                }
            }
            other => panic!("wrong variant: {other:?}"),
        }
        assert!(matches!(
            roundtrip_request(Request::Open {
                client: 42,
                lag: 3,
                version: 2
            }),
            Request::Open {
                client: 42,
                lag: 3,
                version: 2
            }
        ));
        let push = Request::Push {
            client: u64::MAX,
            point: traj.points[1],
        };
        match roundtrip_request(push) {
            Request::Push { client, point } => {
                assert_eq!(client, u64::MAX);
                assert_eq!(point.tower, TowerId(9));
            }
            other => panic!("wrong variant: {other:?}"),
        }
        assert!(matches!(
            roundtrip_request(Request::Finish { client: 1 }),
            Request::Finish { client: 1 }
        ));
    }

    #[test]
    fn responses_roundtrip() {
        assert_eq!(
            roundtrip_response(Response::Route {
                segments: vec![SegmentId(3), SegmentId(1), SegmentId(3)],
                degraded: true,
            }),
            Response::Route {
                segments: vec![SegmentId(3), SegmentId(1), SegmentId(3)],
                degraded: true,
            }
        );
        assert_eq!(
            roundtrip_response(Response::Pushed { committed: 5 }),
            Response::Pushed { committed: 5 }
        );
        for reason in [
            RejectReason::QueueFull,
            RejectReason::SessionLimit,
            RejectReason::ShuttingDown,
            RejectReason::Oversized,
            RejectReason::Invalid,
        ] {
            assert_eq!(
                roundtrip_response(Response::Reject(reason)),
                Response::Reject(reason)
            );
        }
        let e = WireMatchError::from(&MatchError::LayerMismatch { points: 4, layers: 2 });
        assert_eq!(roundtrip_response(Response::Failed(e)), Response::Failed(e));
    }

    #[test]
    fn match_errors_roundtrip_through_wire_form() {
        for err in [
            MatchError::EmptyTrajectory,
            MatchError::NoCandidates,
            MatchError::LayerMismatch { points: 9, layers: 8 },
            MatchError::EmptyLayer { layer: 5 },
        ] {
            let wire = WireMatchError::from(&err);
            assert_eq!(wire.to_match_error(), Some(err));
        }
        assert_eq!(WireMatchError { code: 99, a: 0, b: 0 }.to_match_error(), None);
    }

    fn sample_state() -> BeamState {
        BeamState {
            lag: 3,
            layers: vec![
                vec![
                    Candidate {
                        seg: SegmentId(4),
                        t: 0.25,
                        obs: 0.5,
                    },
                    Candidate {
                        seg: SegmentId(9),
                        t: 1.0,
                        obs: 0.125,
                    },
                ],
                vec![Candidate {
                    seg: SegmentId(2),
                    t: 0.0,
                    obs: 1.0,
                }],
            ],
            pts: vec![
                (Point::new(10.0, -20.5), 0.0),
                (Point::new(11.5, -19.0), 30.0),
            ],
            f: vec![vec![-0.5, f64::NEG_INFINITY], vec![-1.25]],
            pre: vec![vec![None, None], vec![Some(1)]],
            committed_upto: 1,
            committed: vec![SegmentId(4), SegmentId(7)],
            last_committed: Some(Candidate {
                seg: SegmentId(4),
                t: 0.25,
                obs: 0.5,
            }),
            degradation: Degradation {
                dropped_points: 1,
                disconnected_joins: 0,
                clamped_scores: 2,
                failed_matches: 0,
            },
        }
    }

    #[test]
    fn cluster_frames_roundtrip_bit_exact() {
        assert!(matches!(roundtrip_request(Request::Ping), Request::Ping));
        assert!(matches!(
            roundtrip_request(Request::Snapshot { client: 77 }),
            Request::Snapshot { client: 77 }
        ));
        let state = sample_state();
        state.validate().expect("sample state valid");
        match roundtrip_request(Request::Restore {
            client: 5,
            version: 3,
            state: state.clone(),
        }) {
            Request::Restore {
                client,
                version,
                state: got,
            } => {
                assert_eq!(client, 5);
                assert_eq!(version, 3);
                // BeamState equality is bitwise on every float.
                assert_eq!(got, state);
            }
            other => panic!("wrong variant: {other:?}"),
        }
        assert_eq!(
            roundtrip_response(Response::Pong { sessions: 12 }),
            Response::Pong { sessions: 12 }
        );
        assert_eq!(
            roundtrip_response(Response::State {
                state: state.clone()
            }),
            Response::State { state }
        );
    }

    #[test]
    fn model_plane_frames_roundtrip_bit_exact() {
        assert!(matches!(
            roundtrip_request(Request::Swap { version: 4 }),
            Request::Swap { version: 4 }
        ));
        assert!(matches!(
            roundtrip_request(Request::Swap { version: 0 }),
            Request::Swap { version: 0 }
        ));
        assert!(matches!(
            roundtrip_request(Request::Shadow {
                version: 2,
                mirror_every: 5
            }),
            Request::Shadow {
                version: 2,
                mirror_every: 5
            }
        ));
        assert!(matches!(
            roundtrip_request(Request::Versions),
            Request::Versions
        ));
        assert!(matches!(roundtrip_request(Request::Refresh), Request::Refresh));

        let models = Response::Models {
            active: 2,
            previous: 1,
            shadow: 3,
            mirror_every: 4,
            refreshed: 3,
            manifests: vec![
                ModelManifest {
                    version: ModelVersion(1),
                    parent: None,
                    fingerprint: 0xdead_beef_cafe_f00d,
                    weight_bytes: 1024,
                    label: "seed".to_string(),
                },
                ModelManifest {
                    version: ModelVersion(3),
                    parent: Some(ModelVersion(1)),
                    fingerprint: u64::MAX,
                    weight_bytes: 0,
                    label: String::new(),
                },
            ],
        };
        assert_eq!(roundtrip_response(models.clone()), models);

        // Hostile label lengths are refused, not allocated.
        let mut buf = Vec::new();
        let mut body = vec![TAG_MODELS];
        for _ in 0..5 {
            put_u32(&mut body, 1);
        }
        put_u32(&mut body, 1); // one manifest
        put_u32(&mut body, 1); // version
        put_u32(&mut body, 0); // parent
        put_u64(&mut body, 0); // fingerprint
        put_u64(&mut body, 0); // weight bytes
        put_u32(&mut body, (MAX_WIRE_LABEL + 1) as u32);
        write_frame(&mut buf, &body).expect("encode");
        assert!(matches!(
            read_response(&mut &buf[..]),
            Err(WireError::Malformed("manifest label too long"))
        ));
    }

    #[test]
    fn invalid_beam_states_are_refused_on_both_sides() {
        // Encoding an invalid state fails instead of writing garbage.
        let mut bad = sample_state();
        bad.f.pop();
        let mut buf = Vec::new();
        assert!(matches!(
            write_request(
                &mut buf,
                &Request::Restore {
                    client: 1,
                    version: 0,
                    state: bad
                }
            ),
            Err(WireError::Malformed(_))
        ));

        // A wrong version byte is refused.
        let state = sample_state();
        let mut body = vec![TAG_RESTORE];
        put_u64(&mut body, 1);
        put_u32(&mut body, 0);
        let at = body.len();
        put_beam_state(&mut body, &state);
        body[at] = BEAM_STATE_VERSION + 1;
        let mut framed = Vec::new();
        write_frame(&mut framed, &body).expect("encode");
        assert!(matches!(
            read_request(&mut &framed[..]),
            Err(WireError::Malformed("unsupported beam-state version"))
        ));

        // A structurally invalid body (out-of-range backpointer) is refused
        // by the decoder even though every field parses.
        let mut twisted = state;
        twisted.pre[1][0] = Some(7);
        let mut body = vec![TAG_RESTORE];
        put_u64(&mut body, 1);
        put_u32(&mut body, 0);
        body.push(BEAM_STATE_VERSION);
        put_u32(&mut body, twisted.lag as u32);
        put_u32(&mut body, twisted.layers.len() as u32);
        for (i, layer) in twisted.layers.iter().enumerate() {
            let (p, t) = twisted.pts[i];
            put_f64(&mut body, p.x);
            put_f64(&mut body, p.y);
            put_f64(&mut body, t);
            put_u32(&mut body, layer.len() as u32);
            for c in layer {
                put_u32(&mut body, c.seg.0);
                put_f64(&mut body, c.t);
                put_f64(&mut body, c.obs);
            }
            for &v in &twisted.f[i] {
                put_f64(&mut body, v);
            }
            for &p in &twisted.pre[i] {
                put_u32(&mut body, p.map_or(PRE_NONE, |j| j as u32));
            }
        }
        put_u32(&mut body, twisted.committed_upto as u32);
        put_u32(&mut body, twisted.committed.len() as u32);
        for seg in &twisted.committed {
            put_u32(&mut body, seg.0);
        }
        body.push(0);
        // last_committed None + committed_upto 1 is itself invalid, which
        // is fine: either invariant may trip first, both are Malformed.
        for _ in 0..4 {
            put_u64_counter(&mut body, 0);
        }
        let mut framed = Vec::new();
        write_frame(&mut framed, &body).expect("encode");
        assert!(matches!(
            read_request(&mut &framed[..]),
            Err(WireError::Malformed(_))
        ));
    }

    #[test]
    fn malformed_frames_are_typed_errors() {
        // Unknown tag.
        let mut buf = Vec::new();
        write_frame(&mut buf, &[0x7f]).expect("encode");
        assert!(matches!(
            read_request(&mut &buf[..]),
            Err(WireError::Malformed(_))
        ));
        // Truncated body.
        let mut buf = Vec::new();
        write_frame(&mut buf, &[TAG_OPEN, 1, 2]).expect("encode");
        assert!(matches!(
            read_request(&mut &buf[..]),
            Err(WireError::Malformed(_))
        ));
        // Trailing garbage.
        let mut buf = Vec::new();
        let mut body = vec![TAG_FINISH];
        put_u64(&mut body, 3);
        body.push(0xee);
        write_frame(&mut buf, &body).expect("encode");
        assert!(matches!(
            read_request(&mut &buf[..]),
            Err(WireError::Malformed(_))
        ));
        // Oversized declared length.
        let huge = (MAX_FRAME + 1).to_le_bytes();
        assert!(matches!(
            read_request(&mut &huge[..]),
            Err(WireError::TooLarge(_))
        ));
        // EOF mid-frame.
        let short = 100u32.to_le_bytes();
        assert!(matches!(read_request(&mut &short[..]), Err(WireError::Io(_))));
    }
}
