//! The TCP front end: accept loop, per-connection handlers, and graceful
//! drain.
//!
//! ```text
//! TcpListener ── accept ──▶ handler thread per connection
//!                              │ OneShot ──▶ MicroBatcher (bounded queue → workers)
//!                              │ Open/Push/Finish ──▶ SessionManager (mutexed)
//!                              └ responses framed back on the same stream
//! ```
//!
//! Shutdown contract ([`ServerHandle::shutdown_and_drain`]): admissions
//! stop first (every subsequent request is shed with
//! [`RejectReason::ShuttingDown`]), then every already-admitted one-shot
//! flushes through the workers, open sessions are finalized, and all
//! threads join before the final [`ServeReport`] snapshot is taken — an
//! admitted request is never dropped (`in_flight_lost() == 0`).

use crate::admission::RejectReason;
use crate::metrics::{ServeMetrics, ServeReport};
use crate::protocol::{
    read_request, write_response, Request, Response, WireMatchError,
};
use crate::scheduler::{BatchPolicy, MicroBatcher, ServeCtx};
use crate::session::{SessionManager, SessionPolicy};
use lhmm_core::registry::{ModelRegistry, ModelVersion, RegistryError};
use lhmm_network::graph::RoadNetwork;
use std::io;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use lhmm_core::sync::{rank, OrderedMutex};
use std::sync::Arc;
use std::thread::{Scope, ScopedJoinHandle};

/// Full service configuration.
#[derive(Clone, Debug, Default)]
pub struct ServeConfig {
    /// Micro-batch scheduler parameters (one-shot path).
    pub batch: BatchPolicy,
    /// Session-table parameters (streaming path).
    pub sessions: SessionPolicy,
    /// One-shot trajectories with more points than this are shed with
    /// [`RejectReason::Oversized`]. Zero means "use the default".
    pub max_points: usize,
}

impl ServeConfig {
    fn max_points(&self) -> usize {
        if self.max_points == 0 {
            100_000
        } else {
            self.max_points
        }
    }
}

struct Shared<'scope, 'env> {
    batcher: MicroBatcher<'scope, 'env>,
    sessions: OrderedMutex<SessionManager<'env>>,
    registry: &'env ModelRegistry,
    net: &'env RoadNetwork,
    metrics: Arc<ServeMetrics>,
    shutting_down: AtomicBool,
    max_points: usize,
    /// Duplicated handles of accepted streams, so drain can unblock
    /// handlers parked in `read_request`.
    peers: OrderedMutex<Vec<TcpStream>>,
    handlers: OrderedMutex<Vec<ScopedJoinHandle<'scope, ()>>>,
}

impl Shared<'_, '_> {
    fn respond(&self, req: Request) -> Response {
        match req {
            Request::OneShot { traj } => {
                if traj.points.len() > self.max_points {
                    self.metrics.on_rejected(RejectReason::Oversized);
                    return Response::Reject(RejectReason::Oversized);
                }
                match self.batcher.submit(traj) {
                    Ok(rx) => match rx.recv() {
                        Ok(Ok((result, stats))) => Response::Route {
                            segments: result.path.segments,
                            degraded: stats.degraded(),
                        },
                        Ok(Err(e)) => Response::Failed(WireMatchError::from(&e)),
                        // The worker pool hung up without replying: only
                        // possible during teardown.
                        Err(_) => Response::Reject(RejectReason::ShuttingDown),
                    },
                    Err(reason) => Response::Reject(reason),
                }
            }
            Request::Open { client, lag, version } => {
                if self.shutting_down.load(Ordering::Acquire) {
                    self.metrics.on_rejected(RejectReason::ShuttingDown);
                    return Response::Reject(RejectReason::ShuttingDown);
                }
                // Admission is the pinning moment: version 0 resolves to
                // whatever is active *now*, an explicit version must exist.
                let Ok(pin) = self.registry.resolve(version) else {
                    self.metrics.on_rejected(RejectReason::Invalid);
                    return Response::Reject(RejectReason::Invalid);
                };
                let mut sessions = self.sessions.lock();
                match sessions.open(client, lag as usize, pin, &self.metrics) {
                    Ok(()) => Response::Pushed { committed: 0 },
                    Err(reason) => Response::Reject(reason),
                }
            }
            Request::Push { client, point } => {
                if self.shutting_down.load(Ordering::Acquire) {
                    self.metrics.on_rejected(RejectReason::ShuttingDown);
                    return Response::Reject(RejectReason::ShuttingDown);
                }
                let mut sessions = self.sessions.lock();
                match sessions.push(client, &point, &self.metrics) {
                    Ok(committed) => Response::Pushed {
                        committed: committed as u32,
                    },
                    Err(e) => Response::Failed(WireMatchError::from(&e)),
                }
            }
            Request::Finish { client } => {
                if self.shutting_down.load(Ordering::Acquire) {
                    self.metrics.on_rejected(RejectReason::ShuttingDown);
                    return Response::Reject(RejectReason::ShuttingDown);
                }
                let mut sessions = self.sessions.lock();
                match sessions.finish(client, &self.metrics) {
                    Some(fin) => {
                        // Feed the finished route into refresh statistics
                        // and credit the pinned version's lane.
                        self.registry
                            .observe(self.net, &fin.points, &fin.path.segments);
                        self.metrics.on_version_finished(fin.version);
                        Response::Route {
                            segments: fin.path.segments,
                            degraded: fin.disconnected_joins > 0,
                        }
                    }
                    // No such session: the typed "nothing was matched"
                    // verdict (EmptyTrajectory, code 0).
                    None => Response::Failed(WireMatchError { code: 0, a: 0, b: 0 }),
                }
            }
            // Health plane: always answered, even during drain, so a
            // supervisor can distinguish "draining" from "dead".
            Request::Ping => Response::Pong {
                sessions: self.sessions.lock().len() as u32,
            },
            Request::Snapshot { client } => {
                if self.shutting_down.load(Ordering::Acquire) {
                    self.metrics.on_rejected(RejectReason::ShuttingDown);
                    return Response::Reject(RejectReason::ShuttingDown);
                }
                let mut sessions = self.sessions.lock();
                match sessions.take_snapshot(client, &self.metrics) {
                    Some(state) => Response::State { state },
                    // Same typed verdict as Finish on an unknown session
                    // (EmptyTrajectory, code 0): nothing to hand off.
                    None => Response::Failed(WireMatchError { code: 0, a: 0, b: 0 }),
                }
            }
            Request::Restore { client, version, state } => {
                if self.shutting_down.load(Ordering::Acquire) {
                    self.metrics.on_rejected(RejectReason::ShuttingDown);
                    return Response::Reject(RejectReason::ShuttingDown);
                }
                // A handed-off session keeps the pin of its original
                // admission (the router sends the resolved version), so a
                // swap mid-handoff never mixes versions within a session.
                let Ok(pin) = self.registry.resolve(version) else {
                    self.metrics.on_rejected(RejectReason::Invalid);
                    return Response::Reject(RejectReason::Invalid);
                };
                let mut sessions = self.sessions.lock();
                match sessions.import(client, state, pin, &self.metrics) {
                    Ok(()) => Response::Pushed { committed: 0 },
                    Err(reason) => Response::Reject(reason),
                }
            }
            Request::Swap { version } => {
                if self.shutting_down.load(Ordering::Acquire) {
                    self.metrics.on_rejected(RejectReason::ShuttingDown);
                    return Response::Reject(RejectReason::ShuttingDown);
                }
                let swapped = if version == 0 {
                    self.registry.rollback().map(|_| ())
                } else {
                    self.registry.promote(ModelVersion(version))
                };
                match swapped {
                    Ok(()) => {
                        self.metrics.on_model_swap();
                        self.models_response(0)
                    }
                    Err(_) => {
                        self.metrics.on_rejected(RejectReason::Invalid);
                        Response::Reject(RejectReason::Invalid)
                    }
                }
            }
            Request::Shadow { version, mirror_every } => {
                if self.shutting_down.load(Ordering::Acquire) {
                    self.metrics.on_rejected(RejectReason::ShuttingDown);
                    return Response::Reject(RejectReason::ShuttingDown);
                }
                if version == 0 {
                    self.registry.clear_shadow();
                    return self.models_response(0);
                }
                match self.registry.set_shadow(ModelVersion(version), mirror_every) {
                    Ok(()) => self.models_response(0),
                    Err(_) => {
                        self.metrics.on_rejected(RejectReason::Invalid);
                        Response::Reject(RejectReason::Invalid)
                    }
                }
            }
            // Introspection plane: like Ping, answered even during drain.
            Request::Versions => self.models_response(0),
            Request::Refresh => {
                if self.shutting_down.load(Ordering::Acquire) {
                    self.metrics.on_rejected(RejectReason::ShuttingDown);
                    return Response::Reject(RejectReason::ShuttingDown);
                }
                let label = format!("refresh-{}", self.registry.refresh_count() + 1);
                match self.registry.refresh(&label) {
                    Ok(version) => {
                        self.metrics.on_model_refresh();
                        self.models_response(version.0)
                    }
                    // No statistics yet: not an error, just nothing new —
                    // the manifest answer carries `refreshed: 0`.
                    Err(RegistryError::EmptyStats) => self.models_response(0),
                    Err(_) => {
                        self.metrics.on_rejected(RejectReason::Invalid);
                        Response::Reject(RejectReason::Invalid)
                    }
                }
            }
        }
    }

    /// The model-plane answer: active/previous/shadow pointers plus every
    /// manifest, with `refreshed` naming a version a Refresh just minted
    /// (0 otherwise).
    fn models_response(&self, refreshed: u32) -> Response {
        let (shadow, mirror_every) = match self.registry.shadow_plan() {
            Some((v, n)) => (v.0, n),
            None => (0, 0),
        };
        Response::Models {
            active: self.registry.active_version().0,
            previous: self.registry.previous_version().map_or(0, |v| v.0),
            shadow,
            mirror_every,
            refreshed,
            manifests: self.registry.manifests(),
        }
    }

    fn handle_connection(&self, mut stream: TcpStream) {
        loop {
            let req = match read_request(&mut stream) {
                Ok(r) => r,
                // Disconnect, malformed frame, or drain-time shutdown of
                // the socket all end the connection; the framing error is
                // the client's to observe.
                Err(_) => return,
            };
            let resp = self.respond(req);
            if write_response(&mut stream, &resp).is_err() {
                return;
            }
        }
    }
}

/// A running server inside a [`std::thread::scope`].
///
/// Dropping an undrained handle runs the drain: without it, a panic
/// anywhere in the owning scope would leave the accept/scheduler/worker
/// threads running and the scope would never close (a hang instead of a
/// test failure).
pub struct ServerHandle<'scope, 'env> {
    addr: SocketAddr,
    shared: Arc<Shared<'scope, 'env>>,
    accept: OrderedMutex<Option<ScopedJoinHandle<'scope, ()>>>,
    drained: AtomicBool,
}

impl<'scope, 'env> ServerHandle<'scope, 'env> {
    /// Binds a loopback listener and spawns the accept loop, scheduler,
    /// and worker pool into `scope`. The caller must eventually invoke
    /// [`ServerHandle::shutdown_and_drain`] or the scope will not close.
    pub fn start(
        scope: &'scope Scope<'scope, 'env>,
        serve: ServeCtx<'env>,
        config: ServeConfig,
    ) -> io::Result<Self> {
        let listener = TcpListener::bind(("127.0.0.1", 0))?;
        let addr = listener.local_addr()?;
        let metrics = Arc::new(ServeMetrics::new());
        let batcher =
            MicroBatcher::start(scope, serve, config.batch.clone(), Arc::clone(&metrics));
        let mut sessions = SessionManager::new(
            serve.ctx.net,
            serve.ctx.index,
            config.sessions.clone(),
        );
        if let Some(tile_scope) = serve.scope {
            sessions = sessions.with_scope(tile_scope);
        }
        let shared = Arc::new(Shared {
            batcher,
            // Rank-ordered (DESIGN §15): the session lock is taken above
            // metrics/registry leaves and below nothing else in this shard.
            sessions: OrderedMutex::new(rank::SERVER_SESSIONS, "server.sessions", sessions),
            registry: serve.registry,
            net: serve.ctx.net,
            metrics,
            shutting_down: AtomicBool::new(false),
            max_points: config.max_points(),
            peers: OrderedMutex::new(rank::SERVER_PEERS, "server.peers", Vec::new()),
            handlers: OrderedMutex::new(rank::SERVER_HANDLERS, "server.handlers", Vec::new()),
        });

        let accept = {
            let shared = Arc::clone(&shared);
            scope.spawn(move || {
                for incoming in listener.incoming() {
                    if shared.shutting_down.load(Ordering::Acquire) {
                        break;
                    }
                    let Ok(stream) = incoming else { continue };
                    // Request/response frames are small; without nodelay,
                    // Nagle + delayed ACK adds ~40 ms per round trip,
                    // which would distort every latency histogram and
                    // idle-based session policy.
                    let _ = stream.set_nodelay(true);
                    // Track a duplicate handle so drain can unblock the
                    // handler; a connection we cannot track we do not
                    // serve (it could park a handler forever).
                    let Ok(peer) = stream.try_clone() else { continue };
                    shared.peers.lock().push(peer);
                    let conn_shared = Arc::clone(&shared);
                    let handle = scope.spawn(move || conn_shared.handle_connection(stream));
                    shared.handlers.lock().push(handle);
                }
            })
        };

        Ok(ServerHandle {
            addr,
            shared,
            accept: OrderedMutex::new(rank::ACCEPT_HANDLE, "server.accept", Some(accept)),
            drained: AtomicBool::new(false),
        })
    }

    /// The bound loopback address clients connect to.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Live metrics (shared with scheduler, workers, and sessions).
    pub fn metrics(&self) -> &ServeMetrics {
        &self.shared.metrics
    }

    /// Point-in-time metrics snapshot of the running server.
    pub fn report(&self) -> ServeReport {
        self.shared.metrics.snapshot(
            self.shared.batcher.queue_depth(),
            self.shared.sessions.lock().len(),
        )
    }

    /// Graceful drain: stop admissions, flush every admitted one-shot
    /// through the workers, finalize open sessions, join every thread,
    /// and return the final metrics snapshot.
    pub fn shutdown_and_drain(&self) -> ServeReport {
        self.drained.store(true, Ordering::Release);
        let shared = &self.shared;
        // 1. Stop admissions: handlers shed everything from here on.
        shared.shutting_down.store(true, Ordering::Release);
        // 2. Flush the one-shot pipeline. Handlers blocked on a reply
        //    receive it here (workers answer every admitted job before
        //    exiting).
        shared.batcher.drain();
        // 3. Finalize open streaming sessions.
        shared.sessions.lock().finalize_all(&shared.metrics);
        // 4. Unblock the accept loop with a self-connection and join it.
        let _ = TcpStream::connect(self.addr);
        let accept = self.accept.lock().take();
        if let Some(h) = accept {
            let _ = h.join();
        }
        // 5. Unblock handlers parked in read_request and join them.
        for peer in shared.peers.lock().drain(..) {
            let _ = peer.shutdown(std::net::Shutdown::Both);
        }
        let handlers = {
            let mut guard = shared.handlers.lock();
            std::mem::take(&mut *guard)
        };
        for h in handlers {
            let _ = h.join();
        }
        shared.metrics.snapshot(shared.batcher.queue_depth(), 0)
    }

    /// Hard abort: the simulated crash path. Open sessions are dropped
    /// without finalizing (their beam state is lost exactly as a process
    /// kill would lose it), then threads are torn down the same way a
    /// drain does so the owning scope can close. Returns the final
    /// snapshot of the dead shard.
    pub fn abort(&self) -> ServeReport {
        self.drained.store(true, Ordering::Release);
        let shared = &self.shared;
        shared.shutting_down.store(true, Ordering::Release);
        // Crash semantics: in-flight sessions are lost, not finalized.
        let _ = shared.sessions.lock().drop_all();
        // The worker pool still answers already-admitted one-shots so
        // every blocked handler unparks; new work is already shed.
        shared.batcher.drain();
        let _ = TcpStream::connect(self.addr);
        let accept = self.accept.lock().take();
        if let Some(h) = accept {
            let _ = h.join();
        }
        for peer in shared.peers.lock().drain(..) {
            let _ = peer.shutdown(std::net::Shutdown::Both);
        }
        let handlers = {
            let mut guard = shared.handlers.lock();
            std::mem::take(&mut *guard)
        };
        for h in handlers {
            let _ = h.join();
        }
        shared.metrics.snapshot(shared.batcher.queue_depth(), 0)
    }
}

impl Drop for ServerHandle<'_, '_> {
    fn drop(&mut self) {
        if !self.drained.load(Ordering::Acquire) {
            let _ = self.shutdown_and_drain();
        }
    }
}
