//! Blocking in-crate client for the `lhmm-serve` wire protocol.
//!
//! One [`ServeClient`] wraps one TCP connection and speaks strict
//! request/response: every call writes one frame and blocks for exactly
//! one response frame. Typed outcomes are split three ways — transport
//! problems ([`ClientError::Wire`]), admission sheds
//! ([`ClientError::Rejected`], retryable), and matching verdicts
//! ([`ClientError::Failed`], not retryable for the same input).

use crate::admission::RejectReason;
use crate::protocol::{
    read_response, write_request, Request, Response, WireError,
};
use lhmm_cellsim::traj::{CellularPoint, CellularTrajectory};
use lhmm_core::error::MatchError;
use lhmm_core::registry::ModelManifest;
use lhmm_core::streaming::BeamState;
use lhmm_network::graph::SegmentId;
use std::fmt;
use std::io;
use std::net::{SocketAddr, TcpStream};

/// A matched route as the client sees it.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RouteReply {
    /// Matched segment sequence.
    pub segments: Vec<SegmentId>,
    /// True when the server flagged the match as best-effort (degraded).
    pub degraded: bool,
}

/// The server's model-plane state as the client sees it (the reply to
/// Swap/Shadow/Versions/Refresh requests).
#[derive(Clone, Debug, PartialEq)]
pub struct ModelsReply {
    /// Version currently serving new admissions.
    pub active: u32,
    /// Version active before the last swap (0 when there is none).
    pub previous: u32,
    /// Shadow candidate version (0 when shadow mode is off).
    pub shadow: u32,
    /// Every `mirror_every`-th one-shot is mirrored to the shadow.
    pub mirror_every: u32,
    /// Version a Refresh just minted (0 when nothing was produced).
    pub refreshed: u32,
    /// Manifests of every registered version, in version order.
    pub manifests: Vec<ModelManifest>,
}

/// Everything a service call can come back with besides a result.
#[derive(Debug)]
pub enum ClientError {
    /// Transport or framing failure.
    Wire(WireError),
    /// The server shed the request at admission; retry later (or
    /// elsewhere) depending on the reason.
    Rejected(RejectReason),
    /// Matching itself failed with a typed [`MatchError`].
    Failed(MatchError),
    /// The server answered with a frame that does not fit the request
    /// (protocol violation).
    Unexpected(&'static str),
}

impl fmt::Display for ClientError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClientError::Wire(e) => write!(f, "transport: {e}"),
            ClientError::Rejected(r) => write!(f, "rejected: {r}"),
            ClientError::Failed(e) => write!(f, "match failed: {e}"),
            ClientError::Unexpected(what) => write!(f, "protocol violation: {what}"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<WireError> for ClientError {
    fn from(e: WireError) -> Self {
        ClientError::Wire(e)
    }
}

impl ClientError {
    /// True when this is an admission shed (the retryable class).
    pub fn is_rejected(&self) -> bool {
        matches!(self, ClientError::Rejected(_))
    }

    /// The shed reason, when this is a rejection.
    pub fn reject_reason(&self) -> Option<RejectReason> {
        match self {
            ClientError::Rejected(r) => Some(*r),
            _ => None,
        }
    }
}

fn decode_failed(code: crate::protocol::WireMatchError) -> ClientError {
    match code.to_match_error() {
        Some(e) => ClientError::Failed(e),
        None => ClientError::Unexpected("unknown match-error code"),
    }
}

/// A blocking connection to an `lhmm-serve` server.
pub struct ServeClient {
    stream: TcpStream,
}

impl ServeClient {
    /// Connects to `addr`.
    pub fn connect(addr: SocketAddr) -> io::Result<Self> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        Ok(ServeClient { stream })
    }

    fn call(&mut self, req: &Request) -> Result<Response, ClientError> {
        write_request(&mut self.stream, req)?;
        Ok(read_response(&mut self.stream)?)
    }

    /// Matches a complete trajectory through the server's batcher.
    pub fn one_shot(&mut self, traj: &CellularTrajectory) -> Result<RouteReply, ClientError> {
        match self.call(&Request::OneShot { traj: traj.clone() })? {
            Response::Route { segments, degraded } => Ok(RouteReply { segments, degraded }),
            Response::Reject(reason) => Err(ClientError::Rejected(reason)),
            Response::Failed(e) => Err(decode_failed(e)),
            _ => Err(ClientError::Unexpected("non-route reply to OneShot")),
        }
    }

    /// Opens (or reopens) the streaming session keyed `client`, pinned to
    /// whatever model version is active at admission.
    pub fn open(&mut self, client: u64, lag: u32) -> Result<(), ClientError> {
        self.open_versioned(client, lag, 0)
    }

    /// Opens a session pinned to an explicit registry `version` (0 means
    /// "the active version"). An unknown version is shed with
    /// [`RejectReason::Invalid`].
    pub fn open_versioned(
        &mut self,
        client: u64,
        lag: u32,
        version: u32,
    ) -> Result<(), ClientError> {
        match self.call(&Request::Open { client, lag, version })? {
            Response::Pushed { .. } => Ok(()),
            Response::Reject(reason) => Err(ClientError::Rejected(reason)),
            Response::Failed(e) => Err(decode_failed(e)),
            _ => Err(ClientError::Unexpected("non-ack reply to Open")),
        }
    }

    /// Feeds one observation; returns the newly committed count.
    ///
    /// `Err(Failed(NoCandidates))` and `Err(Failed(EmptyLayer { .. }))`
    /// mark a single unmatchable observation — the session survives and
    /// the caller keeps streaming.
    pub fn push(&mut self, client: u64, point: &CellularPoint) -> Result<u32, ClientError> {
        match self.call(&Request::Push {
            client,
            point: *point,
        })? {
            Response::Pushed { committed } => Ok(committed),
            Response::Reject(reason) => Err(ClientError::Rejected(reason)),
            Response::Failed(e) => Err(decode_failed(e)),
            _ => Err(ClientError::Unexpected("non-ack reply to Push")),
        }
    }

    /// Finalizes the session and returns the complete route.
    pub fn finish(&mut self, client: u64) -> Result<RouteReply, ClientError> {
        match self.call(&Request::Finish { client })? {
            Response::Route { segments, degraded } => Ok(RouteReply { segments, degraded }),
            Response::Reject(reason) => Err(ClientError::Rejected(reason)),
            Response::Failed(e) => Err(decode_failed(e)),
            _ => Err(ClientError::Unexpected("non-route reply to Finish")),
        }
    }

    /// Health check: answered even while a shard is draining. Returns
    /// the number of live streaming sessions on the other side.
    pub fn ping(&mut self) -> Result<u32, ClientError> {
        match self.call(&Request::Ping)? {
            Response::Pong { sessions } => Ok(sessions),
            Response::Reject(reason) => Err(ClientError::Rejected(reason)),
            Response::Failed(e) => Err(decode_failed(e)),
            _ => Err(ClientError::Unexpected("non-pong reply to Ping")),
        }
    }

    /// Captures and evicts `client`'s streaming session on the server
    /// (take semantics). `Err(Failed(EmptyTrajectory))` means the server
    /// holds no such session.
    pub fn snapshot(&mut self, client: u64) -> Result<BeamState, ClientError> {
        match self.call(&Request::Snapshot { client })? {
            Response::State { state } => Ok(state),
            Response::Reject(reason) => Err(ClientError::Rejected(reason)),
            Response::Failed(e) => Err(decode_failed(e)),
            _ => Err(ClientError::Unexpected("non-state reply to Snapshot")),
        }
    }

    /// Re-admits a captured session under `client` on the server,
    /// replacing any existing session with the same key. `version` is the
    /// session's original pin (0 = the destination's active version).
    pub fn restore(
        &mut self,
        client: u64,
        version: u32,
        state: &BeamState,
    ) -> Result<(), ClientError> {
        match self.call(&Request::Restore {
            client,
            version,
            state: state.clone(),
        })? {
            Response::Pushed { .. } => Ok(()),
            Response::Reject(reason) => Err(ClientError::Rejected(reason)),
            Response::Failed(e) => Err(decode_failed(e)),
            _ => Err(ClientError::Unexpected("non-ack reply to Restore")),
        }
    }

    fn expect_models(resp: Response, what: &'static str) -> Result<ModelsReply, ClientError> {
        match resp {
            Response::Models {
                active,
                previous,
                shadow,
                mirror_every,
                refreshed,
                manifests,
            } => Ok(ModelsReply {
                active,
                previous,
                shadow,
                mirror_every,
                refreshed,
                manifests,
            }),
            Response::Reject(reason) => Err(ClientError::Rejected(reason)),
            Response::Failed(e) => Err(decode_failed(e)),
            _ => Err(ClientError::Unexpected(what)),
        }
    }

    /// Promotes `version` to active (hot swap). In-flight work keeps the
    /// version it was admitted under; only new admissions see the change.
    pub fn swap(&mut self, version: u32) -> Result<ModelsReply, ClientError> {
        let resp = self.call(&Request::Swap { version })?;
        Self::expect_models(resp, "non-models reply to Swap")
    }

    /// Rolls back to the previously active version.
    pub fn rollback(&mut self) -> Result<ModelsReply, ClientError> {
        self.swap(0)
    }

    /// Mirrors every `mirror_every`-th one-shot through candidate
    /// `version` (shadow A/B). Shadow verdicts never reach clients; they
    /// only feed the per-version report lanes.
    pub fn set_shadow(
        &mut self,
        version: u32,
        mirror_every: u32,
    ) -> Result<ModelsReply, ClientError> {
        let resp = self.call(&Request::Shadow { version, mirror_every })?;
        Self::expect_models(resp, "non-models reply to Shadow")
    }

    /// Turns shadow mode off.
    pub fn clear_shadow(&mut self) -> Result<ModelsReply, ClientError> {
        let resp = self.call(&Request::Shadow {
            version: 0,
            mirror_every: 0,
        })?;
        Self::expect_models(resp, "non-models reply to Shadow")
    }

    /// Lists every registered model version with its manifest.
    pub fn versions(&mut self) -> Result<ModelsReply, ClientError> {
        let resp = self.call(&Request::Versions)?;
        Self::expect_models(resp, "non-models reply to Versions")
    }

    /// Folds the accumulated refresh statistics into a new candidate
    /// version (not promoted). `refreshed` in the reply is 0 when no
    /// statistics had accumulated.
    pub fn refresh(&mut self) -> Result<ModelsReply, ClientError> {
        let resp = self.call(&Request::Refresh)?;
        Self::expect_models(resp, "non-models reply to Refresh")
    }
}
