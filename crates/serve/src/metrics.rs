//! Serving telemetry: counters, gauges and latency histograms.
//!
//! One [`ServeMetrics`] instance is shared by every thread in the server
//! (admission, scheduler, workers, sessions). Counters are atomics; the
//! latency histograms sit behind one mutex that is touched once per
//! request/batch — far off the per-candidate hot path. A point-in-time
//! [`ServeReport`] snapshot is taken at drain (or any time) and rendered
//! through `lhmm_eval`'s latency-table surface.

use crate::admission::RejectReason;
use lhmm_core::types::MatchStats;
use lhmm_eval::histogram::LatencyHistogram;
use lhmm_eval::report::latency_table;
use lhmm_eval::versioned::VersionTable;
use std::fmt::Write as _;
use lhmm_core::sync::{rank, OrderedMutex};
use std::sync::atomic::{AtomicU64, Ordering};

/// Shared serving counters. All methods are `&self` and thread-safe.
pub struct ServeMetrics {
    /// Requests admitted into the batch queue.
    admitted: AtomicU64,
    /// Requests completed (a response was produced by a worker).
    completed: AtomicU64,
    /// Requests shed, by [`RejectReason::index`].
    rejected: [AtomicU64; RejectReason::COUNT],
    /// Replies that found no receiver (client gone before completion).
    orphaned_replies: AtomicU64,
    /// Batches dispatched to the worker pool.
    batches: AtomicU64,
    /// Sum of batch sizes (occupancy numerator).
    batched_requests: AtomicU64,
    /// Largest batch dispatched.
    max_batch: AtomicU64,
    /// Peak queue depth observed at admission.
    peak_queue_depth: AtomicU64,
    /// Streaming sessions opened.
    sessions_opened: AtomicU64,
    /// Sessions evicted for idling past the timeout.
    sessions_evicted_idle: AtomicU64,
    /// Sessions evicted as least-recently-used at the cap.
    sessions_evicted_lru: AtomicU64,
    /// Sessions finalized (explicit finish or drain).
    sessions_finalized: AtomicU64,
    /// Observations pushed into streaming sessions.
    stream_pushes: AtomicU64,
    /// Sessions captured and evicted for handoff to another shard.
    sessions_exported: AtomicU64,
    /// Sessions re-admitted from a handed-off snapshot.
    sessions_imported: AtomicU64,
    /// Model hot swaps (promote/rollback) executed through this server.
    model_swaps: AtomicU64,
    /// Model refreshes executed through this server.
    model_refreshes: AtomicU64,
    /// Shadow mirrors evaluated on a candidate version.
    shadow_served: AtomicU64,
    /// Shadow mirrors whose verdict diverged from the active version's.
    shadow_divergences: AtomicU64,
    /// Latency histograms (seconds).
    hist: OrderedMutex<Histograms>,
    /// Per-model-version serving lanes (hot swap / shadow A/B slicing).
    versions: OrderedMutex<VersionTable>,
}

impl Default for ServeMetrics {
    fn default() -> Self {
        ServeMetrics {
            admitted: AtomicU64::new(0),
            completed: AtomicU64::new(0),
            rejected: Default::default(),
            orphaned_replies: AtomicU64::new(0),
            batches: AtomicU64::new(0),
            batched_requests: AtomicU64::new(0),
            max_batch: AtomicU64::new(0),
            peak_queue_depth: AtomicU64::new(0),
            sessions_opened: AtomicU64::new(0),
            sessions_evicted_idle: AtomicU64::new(0),
            sessions_evicted_lru: AtomicU64::new(0),
            sessions_finalized: AtomicU64::new(0),
            stream_pushes: AtomicU64::new(0),
            sessions_exported: AtomicU64::new(0),
            sessions_imported: AtomicU64::new(0),
            model_swaps: AtomicU64::new(0),
            model_refreshes: AtomicU64::new(0),
            shadow_served: AtomicU64::new(0),
            shadow_divergences: AtomicU64::new(0),
            // Rank-ordered (DESIGN §15): histograms may be held while the
            // version-lane lock is taken inside `snapshot`.
            hist: OrderedMutex::new(rank::METRICS_HIST, "metrics.hist", Histograms::default()),
            versions: OrderedMutex::new(
                rank::METRICS_VERSIONS,
                "metrics.versions",
                VersionTable::default(),
            ),
        }
    }
}

#[derive(Default)]
struct Histograms {
    /// Admission to dequeue-by-scheduler.
    queue_wait: LatencyHistogram,
    /// Worker service time per one-shot request (match only).
    service: LatencyHistogram,
    /// Candidate-preparation stage per request (from [`MatchStats`]).
    stage_candidates: LatencyHistogram,
    /// Viterbi/path-finding stage per request (from [`MatchStats`]).
    stage_viterbi: LatencyHistogram,
    /// Per-push streaming latency (candidate prep + DP extension).
    stream_push: LatencyHistogram,
}

impl ServeMetrics {
    /// A fresh, all-zero metrics hub.
    pub fn new() -> Self {
        Self::default()
    }

    /// Counts one admitted request and folds the observed queue depth into
    /// the peak gauge.
    pub fn on_admitted(&self, queue_depth: usize) {
        self.admitted.fetch_add(1, Ordering::Relaxed);
        self.peak_queue_depth
            .fetch_max(queue_depth as u64, Ordering::Relaxed);
    }

    /// Counts one shed request.
    pub fn on_rejected(&self, reason: RejectReason) {
        self.rejected[reason.index()].fetch_add(1, Ordering::Relaxed);
    }

    /// Counts one dispatched batch of `size` requests.
    pub fn on_batch(&self, size: usize) {
        self.batches.fetch_add(1, Ordering::Relaxed);
        self.batched_requests.fetch_add(size as u64, Ordering::Relaxed);
        self.max_batch.fetch_max(size as u64, Ordering::Relaxed);
    }

    /// Records one completed one-shot request: its queue wait, worker
    /// service time and the per-stage times from the match telemetry.
    pub fn on_completed(&self, queue_wait_s: f64, service_s: f64, stats: &MatchStats) {
        self.completed.fetch_add(1, Ordering::Relaxed);
        let mut h = self.hist.lock();
        h.queue_wait.record(queue_wait_s);
        h.service.record(service_s);
        h.stage_candidates.record(stats.candidate_time_s);
        h.stage_viterbi.record(stats.viterbi_time_s);
        drop(h);
        self.versions.lock().record_served(stats.model_version, service_s);
    }

    /// Counts one model hot swap (promote or rollback) this server executed.
    pub fn on_model_swap(&self) {
        self.model_swaps.fetch_add(1, Ordering::Relaxed);
    }

    /// Counts one model refresh this server executed.
    pub fn on_model_refresh(&self) {
        self.model_refreshes.fetch_add(1, Ordering::Relaxed);
    }

    /// Records one shadow mirror evaluated on candidate `version`:
    /// its service time and whether its verdict diverged from the active
    /// version's.
    pub fn on_shadow(&self, version: u32, service_s: f64, diverged: bool) {
        self.shadow_served.fetch_add(1, Ordering::Relaxed);
        if diverged {
            self.shadow_divergences.fetch_add(1, Ordering::Relaxed);
        }
        self.versions.lock().record_shadow(version, service_s, diverged);
    }

    /// Records a streaming finish's verdict into its pinned version's lane
    /// (per-push latency was already recorded, so no latency sample here).
    pub fn on_version_finished(&self, version: u32) {
        self.versions.lock().record_finished(version);
    }

    /// Counts a reply whose client had already gone away.
    pub fn on_orphaned_reply(&self) {
        self.orphaned_replies.fetch_add(1, Ordering::Relaxed);
    }

    /// Counts a session open.
    pub fn on_session_opened(&self) {
        self.sessions_opened.fetch_add(1, Ordering::Relaxed);
    }

    /// Counts an idle-timeout eviction.
    pub fn on_session_evicted_idle(&self) {
        self.sessions_evicted_idle.fetch_add(1, Ordering::Relaxed);
    }

    /// Counts an LRU eviction at the session cap.
    pub fn on_session_evicted_lru(&self) {
        self.sessions_evicted_lru.fetch_add(1, Ordering::Relaxed);
    }

    /// Counts a finalized session.
    pub fn on_session_finalized(&self) {
        self.sessions_finalized.fetch_add(1, Ordering::Relaxed);
    }

    /// Records one streaming push and its latency.
    pub fn on_stream_push(&self, seconds: f64) {
        self.stream_pushes.fetch_add(1, Ordering::Relaxed);
        self.hist.lock().stream_push.record(seconds);
    }

    /// Counts a session handed off to another shard (snapshot + evict).
    pub fn on_session_exported(&self) {
        self.sessions_exported.fetch_add(1, Ordering::Relaxed);
    }

    /// Counts a session re-admitted from a handoff snapshot.
    pub fn on_session_imported(&self) {
        self.sessions_imported.fetch_add(1, Ordering::Relaxed);
    }

    /// Requests admitted so far.
    pub fn admitted(&self) -> u64 {
        self.admitted.load(Ordering::Relaxed)
    }

    /// Requests completed so far.
    pub fn completed(&self) -> u64 {
        self.completed.load(Ordering::Relaxed)
    }

    /// Takes a point-in-time snapshot of everything.
    pub fn snapshot(&self, queue_depth: usize, active_sessions: usize) -> ServeReport {
        let h = self.hist.lock();
        let mut rejected = [0u64; RejectReason::COUNT];
        for (out, src) in rejected.iter_mut().zip(&self.rejected) {
            *out = src.load(Ordering::Relaxed);
        }
        ServeReport {
            admitted: self.admitted.load(Ordering::Relaxed),
            completed: self.completed.load(Ordering::Relaxed),
            rejected,
            orphaned_replies: self.orphaned_replies.load(Ordering::Relaxed),
            batches: self.batches.load(Ordering::Relaxed),
            batched_requests: self.batched_requests.load(Ordering::Relaxed),
            max_batch: self.max_batch.load(Ordering::Relaxed),
            queue_depth,
            peak_queue_depth: self.peak_queue_depth.load(Ordering::Relaxed),
            active_sessions,
            sessions_opened: self.sessions_opened.load(Ordering::Relaxed),
            sessions_evicted_idle: self.sessions_evicted_idle.load(Ordering::Relaxed),
            sessions_evicted_lru: self.sessions_evicted_lru.load(Ordering::Relaxed),
            sessions_finalized: self.sessions_finalized.load(Ordering::Relaxed),
            stream_pushes: self.stream_pushes.load(Ordering::Relaxed),
            sessions_exported: self.sessions_exported.load(Ordering::Relaxed),
            sessions_imported: self.sessions_imported.load(Ordering::Relaxed),
            model_swaps: self.model_swaps.load(Ordering::Relaxed),
            model_refreshes: self.model_refreshes.load(Ordering::Relaxed),
            shadow_served: self.shadow_served.load(Ordering::Relaxed),
            shadow_divergences: self.shadow_divergences.load(Ordering::Relaxed),
            versions: self.versions.lock().clone(),
            queue_wait: h.queue_wait.clone(),
            service: h.service.clone(),
            stage_candidates: h.stage_candidates.clone(),
            stage_viterbi: h.stage_viterbi.clone(),
            stream_push: h.stream_push.clone(),
        }
    }
}

/// A point-in-time serving report (what drain returns).
#[derive(Clone, Debug)]
pub struct ServeReport {
    /// Requests admitted into the batch queue.
    pub admitted: u64,
    /// Requests a worker completed with a response.
    pub completed: u64,
    /// Shed requests by [`RejectReason::index`].
    pub rejected: [u64; RejectReason::COUNT],
    /// Replies whose client disconnected before completion.
    pub orphaned_replies: u64,
    /// Batches dispatched.
    pub batches: u64,
    /// Total requests across all batches.
    pub batched_requests: u64,
    /// Largest dispatched batch.
    pub max_batch: u64,
    /// Queue depth at snapshot time (0 after a drain).
    pub queue_depth: usize,
    /// Peak queue depth observed at admission.
    pub peak_queue_depth: u64,
    /// Open sessions at snapshot time (0 after a drain).
    pub active_sessions: usize,
    /// Sessions opened over the server's lifetime.
    pub sessions_opened: u64,
    /// Idle-timeout evictions.
    pub sessions_evicted_idle: u64,
    /// LRU evictions at the cap.
    pub sessions_evicted_lru: u64,
    /// Finalized sessions (finish requests + drain finalizations).
    pub sessions_finalized: u64,
    /// Streaming observations absorbed.
    pub stream_pushes: u64,
    /// Sessions handed off to other shards (snapshot + evict).
    pub sessions_exported: u64,
    /// Sessions re-admitted from handoff snapshots.
    pub sessions_imported: u64,
    /// Model hot swaps (promote/rollback) executed.
    pub model_swaps: u64,
    /// Model refreshes executed.
    pub model_refreshes: u64,
    /// Shadow mirrors evaluated on a candidate version.
    pub shadow_served: u64,
    /// Shadow mirrors whose verdict diverged from the active version's.
    pub shadow_divergences: u64,
    /// Per-model-version serving lanes.
    pub versions: VersionTable,
    /// Admission-to-dequeue wait.
    pub queue_wait: LatencyHistogram,
    /// Worker service time per one-shot request.
    pub service: LatencyHistogram,
    /// Candidate-preparation stage time per request.
    pub stage_candidates: LatencyHistogram,
    /// Viterbi stage time per request.
    pub stage_viterbi: LatencyHistogram,
    /// Streaming push latency.
    pub stream_push: LatencyHistogram,
}

impl ServeReport {
    /// Total shed requests across all reasons.
    pub fn total_rejected(&self) -> u64 {
        self.rejected.iter().sum()
    }

    /// Shed count for one reason.
    pub fn rejected_for(&self, reason: RejectReason) -> u64 {
        self.rejected[reason.index()]
    }

    /// Mean requests per dispatched batch (the occupancy the
    /// size-or-deadline policy achieved).
    pub fn mean_batch_occupancy(&self) -> f64 {
        if self.batches == 0 {
            return 0.0;
        }
        self.batched_requests as f64 / self.batches as f64
    }

    /// Requests admitted but never completed (must be 0 after a graceful
    /// drain — the acceptance criterion of the drain path).
    pub fn in_flight_lost(&self) -> u64 {
        self.admitted.saturating_sub(self.completed)
    }

    /// Folds another shard's report into this one — the cluster rollup.
    /// Counters and histogram buckets add (histogram merge is exactly
    /// associative and commutative, so the rollup is order-independent);
    /// peaks take the max; point-in-time gauges (queue depth, active
    /// sessions) add across shards.
    pub fn merge(&mut self, other: &ServeReport) {
        self.admitted += other.admitted;
        self.completed += other.completed;
        for (a, b) in self.rejected.iter_mut().zip(&other.rejected) {
            *a += b;
        }
        self.orphaned_replies += other.orphaned_replies;
        self.batches += other.batches;
        self.batched_requests += other.batched_requests;
        self.max_batch = self.max_batch.max(other.max_batch);
        self.queue_depth += other.queue_depth;
        self.peak_queue_depth = self.peak_queue_depth.max(other.peak_queue_depth);
        self.active_sessions += other.active_sessions;
        self.sessions_opened += other.sessions_opened;
        self.sessions_evicted_idle += other.sessions_evicted_idle;
        self.sessions_evicted_lru += other.sessions_evicted_lru;
        self.sessions_finalized += other.sessions_finalized;
        self.stream_pushes += other.stream_pushes;
        self.sessions_exported += other.sessions_exported;
        self.sessions_imported += other.sessions_imported;
        self.model_swaps += other.model_swaps;
        self.model_refreshes += other.model_refreshes;
        self.shadow_served += other.shadow_served;
        self.shadow_divergences += other.shadow_divergences;
        self.versions.merge(&other.versions);
        self.queue_wait.merge(&other.queue_wait);
        self.service.merge(&other.service);
        self.stage_candidates.merge(&other.stage_candidates);
        self.stage_viterbi.merge(&other.stage_viterbi);
        self.stream_push.merge(&other.stream_push);
    }

    /// Renders the full report (counters + latency tables).
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "== serving report ==");
        let _ = writeln!(
            out,
            "one-shot: admitted {} | completed {} | lost {} | orphaned replies {}",
            self.admitted,
            self.completed,
            self.in_flight_lost(),
            self.orphaned_replies
        );
        let _ = writeln!(
            out,
            "shed:     queue_full {} | session_limit {} | shutting_down {} | oversized {} | invalid {}",
            self.rejected_for(RejectReason::QueueFull),
            self.rejected_for(RejectReason::SessionLimit),
            self.rejected_for(RejectReason::ShuttingDown),
            self.rejected_for(RejectReason::Oversized),
            self.rejected_for(RejectReason::Invalid),
        );
        let _ = writeln!(
            out,
            "batching: {} batches | mean occupancy {:.2} | max batch {} | queue depth {} (peak {})",
            self.batches,
            self.mean_batch_occupancy(),
            self.max_batch,
            self.queue_depth,
            self.peak_queue_depth,
        );
        let _ = writeln!(
            out,
            "sessions: active {} | opened {} | finalized {} | evicted idle {} / lru {} | pushes {} | handoff out {} / in {}",
            self.active_sessions,
            self.sessions_opened,
            self.sessions_finalized,
            self.sessions_evicted_idle,
            self.sessions_evicted_lru,
            self.stream_pushes,
            self.sessions_exported,
            self.sessions_imported,
        );
        if self.model_swaps + self.model_refreshes + self.shadow_served > 0
            || !self.versions.is_empty()
        {
            let _ = writeln!(
                out,
                "models:   swaps {} | refreshes {} | shadow {} (div {})",
                self.model_swaps,
                self.model_refreshes,
                self.shadow_served,
                self.shadow_divergences,
            );
            self.versions.render(&mut out);
        }
        out.push_str(&latency_table(
            "latency",
            &[
                ("queue_wait", &self.queue_wait),
                ("service", &self.service),
                ("stage:candidates", &self.stage_candidates),
                ("stage:viterbi", &self.stage_viterbi),
                ("stream:push", &self.stream_push),
            ],
        ));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_reflects_counters() {
        let m = ServeMetrics::new();
        m.on_admitted(3);
        m.on_admitted(1);
        m.on_rejected(RejectReason::QueueFull);
        m.on_rejected(RejectReason::QueueFull);
        m.on_rejected(RejectReason::Oversized);
        m.on_batch(4);
        m.on_batch(2);
        m.on_completed(0.001, 0.004, &MatchStats::default());
        m.on_session_opened();
        m.on_session_finalized();
        m.on_stream_push(0.0005);
        let r = m.snapshot(1, 1);
        assert_eq!(r.admitted, 2);
        assert_eq!(r.completed, 1);
        assert_eq!(r.in_flight_lost(), 1);
        assert_eq!(r.rejected_for(RejectReason::QueueFull), 2);
        assert_eq!(r.total_rejected(), 3);
        assert_eq!(r.max_batch, 4);
        assert!((r.mean_batch_occupancy() - 3.0).abs() < 1e-12);
        assert_eq!(r.peak_queue_depth, 3);
        assert_eq!(r.queue_wait.count(), 1);
        assert_eq!(r.stage_viterbi.count(), 1);
        assert_eq!(r.stream_push.count(), 1);
        let text = r.render();
        assert!(text.contains("serving report"));
        assert!(text.contains("queue_full 2"));
        assert!(text.contains("stage:viterbi"));
    }

    #[test]
    fn version_lanes_slice_by_model_version() {
        let m = ServeMetrics::new();
        let mut stats = MatchStats {
            model_version: 1,
            ..Default::default()
        };
        m.on_completed(0.001, 0.002, &stats);
        stats.model_version = 2;
        m.on_completed(0.001, 0.003, &stats);
        m.on_version_finished(2);
        m.on_shadow(3, 0.004, true);
        m.on_model_swap();
        m.on_model_refresh();
        let r = m.snapshot(0, 0);
        assert_eq!(r.model_swaps, 1);
        assert_eq!(r.model_refreshes, 1);
        assert_eq!(r.shadow_served, 1);
        assert_eq!(r.shadow_divergences, 1);
        assert_eq!(r.versions.lanes[&1].served, 1);
        assert_eq!(r.versions.lanes[&2].served, 2);
        assert_eq!(r.versions.lanes[&3].shadow_served, 1);
        let text = r.render();
        assert!(text.contains("swaps 1 | refreshes 1 | shadow 1 (div 1)"), "{text}");
        assert!(text.contains("v2: served 2"), "{text}");

        // Lanes merge across shards like every other counter.
        let mut r2 = r.clone();
        r2.merge(&r);
        assert_eq!(r2.versions.lanes[&2].served, 4);
        assert_eq!(r2.model_swaps, 2);
        assert_eq!(r2.shadow_divergences, 2);
    }

    #[test]
    fn reports_merge_across_shards() {
        let a = ServeMetrics::new();
        a.on_admitted(2);
        a.on_completed(0.001, 0.002, &MatchStats::default());
        a.on_rejected(RejectReason::Invalid);
        a.on_session_exported();
        a.on_stream_push(0.001);
        let b = ServeMetrics::new();
        b.on_admitted(5);
        b.on_batch(3);
        b.on_session_imported();
        b.on_stream_push(0.002);
        b.on_stream_push(0.004);

        let mut ra = a.snapshot(1, 2);
        let rb = b.snapshot(3, 4);
        // Merge is commutative: both orders agree on every counter.
        let mut rba = rb.clone();
        rba.merge(&ra);
        ra.merge(&rb);
        assert_eq!(ra.admitted, 2);
        assert_eq!(ra.completed, 1);
        assert_eq!(ra.in_flight_lost(), 1);
        assert_eq!(ra.rejected_for(RejectReason::Invalid), 1);
        assert_eq!(ra.queue_depth, 4);
        assert_eq!(ra.active_sessions, 6);
        assert_eq!(ra.sessions_exported, 1);
        assert_eq!(ra.sessions_imported, 1);
        assert_eq!(ra.stream_pushes, 3);
        assert_eq!(ra.stream_push.count(), 3);
        assert_eq!(rba.admitted, ra.admitted);
        assert_eq!(rba.stream_push.count(), ra.stream_push.count());
        assert_eq!(rba.peak_queue_depth, ra.peak_queue_depth);
        assert!(ra.render().contains("handoff out 1 / in 1"));
    }
}
