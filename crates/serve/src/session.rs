//! Multi-tenant streaming sessions: per-client [`StreamingEngine`]s with
//! idle-timeout eviction and an LRU cap.
//!
//! Each session owns a [`StreamingEngine`] (fixed-lag online Viterbi over
//! a warm shortest-path cache) plus the per-trajectory [`ClassicModel`]
//! whose positions grow as observations arrive. Candidate layers are
//! prepared per push with the classic distance-scored preparation — the
//! same construction the offline comparator uses, so a full-lag session is
//! byte-identical to offline Viterbi without shortcuts (pinned by the
//! loopback equivalence test).
//!
//! Capacity policy: at most `max_sessions` live sessions. A new `open`
//! first sweeps sessions idle past `idle_timeout`; if the table is still
//! full it evicts the least-recently-used session *if* that session has
//! been idle at all (strictly older than the newest touch), otherwise the
//! open is shed with [`RejectReason::SessionLimit`]. Evicted sessions are
//! finalized (their engine state is flushed), never silently dropped.
//!
//! Version pinning: every session carries the [`VersionedModel`] it was
//! admitted under. The pin supplies the shortest-path backend for the
//! session's engine (answers are bitwise identical across backends, so a
//! hot swap never changes a live session's route) and stamps the finished
//! route with the version number, so reports can slice streaming traffic
//! by model version exactly like one-shot traffic.

use crate::admission::RejectReason;
use crate::metrics::ServeMetrics;
use lhmm_cellsim::traj::CellularPoint;
use lhmm_core::candidates::{nearest_segments, to_candidates};
use lhmm_core::classic::{ClassicModel, ClassicObservation, ClassicTransition};
use lhmm_core::error::MatchError;
use lhmm_core::registry::VersionedModel;
use lhmm_core::streaming::{BeamState, StreamingEngine};
use lhmm_network::graph::RoadNetwork;
use lhmm_network::path::Path;
use lhmm_network::spatial::SpatialIndex;
use lhmm_network::tile::TileScope;
use std::collections::HashMap;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Session-table parameters.
#[derive(Clone, Debug)]
pub struct SessionPolicy {
    /// Maximum live sessions.
    pub max_sessions: usize,
    /// A session untouched for this long is evictable (and swept on the
    /// next session operation).
    pub idle_timeout: Duration,
    /// At the cap, the LRU session is evicted for a newcomer only if it
    /// has been idle at least this long; otherwise the open is shed with
    /// [`RejectReason::SessionLimit`]. Protects actively streaming
    /// sessions from being cannibalized under churn.
    pub lru_evict_min_idle: Duration,
    /// Candidates per streaming observation.
    pub k: usize,
    /// Candidate search radius, meters.
    pub radius: f64,
}

impl Default for SessionPolicy {
    fn default() -> Self {
        SessionPolicy {
            max_sessions: 1024,
            idle_timeout: Duration::from_secs(300),
            lru_evict_min_idle: Duration::from_secs(10),
            k: 12,
            radius: 3_000.0,
        }
    }
}

struct Session<'a> {
    engine: StreamingEngine<'a>,
    model: ClassicModel,
    /// Registry entry the session was admitted under; fixed for the
    /// session's lifetime (reopening a key re-pins, because a new trip is
    /// a new admission).
    pin: Arc<VersionedModel>,
    /// Observations this session accepted locally, kept for refresh
    /// statistics at finish time. Imported sessions restart empty: only
    /// pushes this shard actually matched are credited here.
    points: Vec<CellularPoint>,
    last_touch: Instant,
    /// Monotone use stamp for LRU ordering (ties impossible).
    stamp: u64,
}

/// Everything a finished session hands back to the serving layer.
#[derive(Clone, Debug)]
pub struct SessionFinish {
    /// The finalized route.
    pub path: Path,
    /// Joins the fixed-lag engine had to bridge across disconnected
    /// candidate layers (degradation counter).
    pub disconnected_joins: u64,
    /// Registry version the session was pinned to at admission.
    pub version: u32,
    /// Observations the session accepted locally, for
    /// [`ModelRegistry::observe`](lhmm_core::registry::ModelRegistry::observe).
    pub points: Vec<CellularPoint>,
}

/// The session table. Not internally synchronized: the server wraps it in
/// one mutex (streaming pushes serialize on it; the per-push Dijkstra
/// dominates the hold time).
pub struct SessionManager<'a> {
    net: &'a RoadNetwork,
    index: &'a SpatialIndex,
    policy: SessionPolicy,
    sessions: HashMap<u64, Session<'a>>,
    next_stamp: u64,
    /// Tile view for sharded serving: positions inside the tile core run
    /// candidate preparation against the tile's subset index (byte-exact
    /// because the halo covers the search radius); positions outside the
    /// core — possible transiently around a handoff or under teleport
    /// faults — fall back to the full index. `None` for unsharded serving.
    scope: Option<&'a TileScope>,
}

impl<'a> SessionManager<'a> {
    /// An empty table over `net`/`index`. Each session's shortest-path
    /// backend comes from the [`VersionedModel`] it is opened with.
    pub fn new(net: &'a RoadNetwork, index: &'a SpatialIndex, policy: SessionPolicy) -> Self {
        SessionManager {
            net,
            index,
            policy,
            sessions: HashMap::new(),
            next_stamp: 0,
            scope: None,
        }
    }

    /// Restricts candidate preparation to a tile scope (sharded serving):
    /// core positions use the tile's subset index, everything else the full
    /// index. Answers are byte-identical either way; the subset just stays
    /// cache-resident per shard.
    pub fn with_scope(mut self, scope: &'a TileScope) -> Self {
        self.scope = Some(scope);
        self
    }

    /// Live session count.
    pub fn len(&self) -> usize {
        self.sessions.len()
    }

    /// True when no session is open.
    pub fn is_empty(&self) -> bool {
        self.sessions.is_empty()
    }

    fn stamp(&mut self) -> u64 {
        self.next_stamp += 1;
        self.next_stamp
    }

    /// Evicts every session idle past the timeout, finalizing each.
    /// Returns the number evicted.
    pub fn sweep_idle(&mut self, metrics: &ServeMetrics) -> usize {
        let now = Instant::now();
        let timeout = self.policy.idle_timeout;
        let expired: Vec<u64> = self
            .sessions
            .iter()
            .filter(|(_, s)| now.duration_since(s.last_touch) >= timeout)
            .map(|(&id, _)| id)
            .collect();
        let n = expired.len();
        for id in expired {
            if let Some(mut s) = self.sessions.remove(&id) {
                let _ = s.engine.finalize();
                metrics.on_session_evicted_idle();
                metrics.on_session_finalized();
            }
        }
        n
    }

    /// Opens (or replaces) the session keyed `client`, pinned to `pin`
    /// for its whole lifetime. Reopening an existing key finalizes the
    /// previous trajectory first — a client starting a new trip reuses its
    /// warm engine but re-pins (a new trip is a new admission, so it picks
    /// up whatever version is active *now*; backend answers are bitwise
    /// identical across versions, so the warm engine stays valid).
    pub fn open(
        &mut self,
        client: u64,
        lag: usize,
        pin: Arc<VersionedModel>,
        metrics: &ServeMetrics,
    ) -> Result<(), RejectReason> {
        self.sweep_idle(metrics);
        if let Some(existing) = self.sessions.get_mut(&client) {
            // Reuse the warm engine for the client's next trajectory.
            let _ = existing.engine.finalize();
            metrics.on_session_finalized();
            existing.engine.lag = lag;
            existing.model = fresh_model();
            existing.pin = pin;
            existing.points = Vec::new();
            existing.last_touch = Instant::now();
            let stamp = self.stamp();
            if let Some(s) = self.sessions.get_mut(&client) {
                s.stamp = stamp;
            }
            metrics.on_session_opened();
            return Ok(());
        }
        if self.sessions.len() >= self.policy.max_sessions {
            // LRU eviction: take the stalest session, but only if it has
            // been idle past the policy threshold — otherwise shed the
            // open rather than cannibalize an active session.
            let lru = self
                .sessions
                .iter()
                .min_by_key(|(_, s)| s.stamp)
                .map(|(&id, s)| (id, s.last_touch));
            match lru {
                Some((id, touched)) if touched.elapsed() >= self.policy.lru_evict_min_idle => {
                    if let Some(mut s) = self.sessions.remove(&id) {
                        let _ = s.engine.finalize();
                        metrics.on_session_evicted_lru();
                        metrics.on_session_finalized();
                    }
                }
                _ => {
                    metrics.on_rejected(RejectReason::SessionLimit);
                    return Err(RejectReason::SessionLimit);
                }
            }
        }
        let stamp = self.stamp();
        let engine = StreamingEngine::with_backend(self.net, lag, pin.model.sp_handle());
        self.sessions.insert(
            client,
            Session {
                engine,
                model: fresh_model(),
                pin,
                points: Vec::new(),
                last_touch: Instant::now(),
                stamp,
            },
        );
        metrics.on_session_opened();
        Ok(())
    }

    /// Feeds one observation into `client`'s session. Returns the newly
    /// committed observation count.
    ///
    /// `Err(NoCandidates)` marks an unmatchable observation (outside
    /// network coverage) — the session is untouched and the client keeps
    /// streaming, mirroring the offline dropped-point degradation.
    /// An unknown `client` is `Err(EmptyTrajectory)` (no session — nothing
    /// is being matched).
    pub fn push(
        &mut self,
        client: u64,
        point: &CellularPoint,
        metrics: &ServeMetrics,
    ) -> Result<usize, MatchError> {
        let stamp = self.stamp();
        let started = Instant::now();
        let session = self
            .sessions
            .get_mut(&client)
            .ok_or(MatchError::EmptyTrajectory)?;
        session.last_touch = Instant::now();
        session.stamp = stamp;
        let pos = point.effective_pos();
        // Core-or-full rule: only positions the tile's halo provably covers
        // use the subset index; anything else gets the full one, so the
        // answer never depends on which shard runs the query.
        let index = match self.scope {
            Some(scope) if scope.core.contains(pos) => &scope.index,
            _ => self.index,
        };
        let pairs = nearest_segments(
            self.net,
            index,
            pos,
            self.policy.k,
            self.policy.radius,
        );
        if pairs.is_empty() {
            return Err(MatchError::NoCandidates);
        }
        // The model's positions must align with the engine's layers: index
        // `i = engine.len()` is the layer this push creates.
        let i = session.engine.len();
        session.model.positions.push(pos);
        let layer = to_candidates(&mut session.model, i, &pairs);
        match session
            .engine
            .push(pos, point.t, layer, &mut session.model)
        {
            Ok(committed) => {
                session.points.push(*point);
                metrics.on_stream_push(started.elapsed().as_secs_f64());
                Ok(committed)
            }
            Err(e) => {
                // Keep positions aligned with the rejected layer undone.
                session.model.positions.pop();
                Err(e)
            }
        }
    }

    /// Finalizes and removes `client`'s session, returning the complete
    /// route plus the pinned version and the accepted observations (so the
    /// server can fold them into refresh statistics). Unknown clients get
    /// `None`.
    pub fn finish(&mut self, client: u64, metrics: &ServeMetrics) -> Option<SessionFinish> {
        let mut session = self.sessions.remove(&client)?;
        let path = session.engine.finalize();
        let disconnected = session.engine.degradation().disconnected_joins;
        metrics.on_session_finalized();
        Some(SessionFinish {
            path,
            disconnected_joins: disconnected,
            version: session.pin.manifest.version.0,
            points: session.points,
        })
    }

    /// Finalizes every open session (graceful drain). Returns how many
    /// were flushed.
    pub fn finalize_all(&mut self, metrics: &ServeMetrics) -> usize {
        let ids: Vec<u64> = self.sessions.keys().copied().collect();
        let n = ids.len();
        for id in ids {
            if let Some(mut s) = self.sessions.remove(&id) {
                let _ = s.engine.finalize();
                metrics.on_session_finalized();
            }
        }
        n
    }

    /// Captures and evicts `client`'s session for handoff to another shard
    /// (take semantics — after this the session no longer exists here).
    /// Unknown clients get `None`.
    pub fn take_snapshot(&mut self, client: u64, metrics: &ServeMetrics) -> Option<BeamState> {
        let session = self.sessions.remove(&client)?;
        let state = session.engine.snapshot();
        metrics.on_session_exported();
        Some(state)
    }

    /// Re-admits a session captured elsewhere under `client`, rebuilding
    /// the per-trajectory model from the state's positions and pinning it
    /// to `pin` (the router resolves the version the session was
    /// originally admitted under, so a handoff never changes a session's
    /// pin). Replaces any existing session with the same key (its state is
    /// superseded by the imported one). Subject to the same capacity
    /// policy as `open`; a state that fails validation against this
    /// network is [`RejectReason::Invalid`].
    pub fn import(
        &mut self,
        client: u64,
        state: BeamState,
        pin: Arc<VersionedModel>,
        metrics: &ServeMetrics,
    ) -> Result<(), RejectReason> {
        self.sweep_idle(metrics);
        if self.sessions.contains_key(&client) {
            // Superseded by the imported state; drop without finalizing
            // (the imported state carries the authoritative session).
            self.sessions.remove(&client);
        } else if self.sessions.len() >= self.policy.max_sessions {
            let lru = self
                .sessions
                .iter()
                .min_by_key(|(_, s)| s.stamp)
                .map(|(&id, s)| (id, s.last_touch));
            match lru {
                Some((id, touched)) if touched.elapsed() >= self.policy.lru_evict_min_idle => {
                    if let Some(mut s) = self.sessions.remove(&id) {
                        let _ = s.engine.finalize();
                        metrics.on_session_evicted_lru();
                        metrics.on_session_finalized();
                    }
                }
                _ => {
                    metrics.on_rejected(RejectReason::SessionLimit);
                    return Err(RejectReason::SessionLimit);
                }
            }
        }
        let lag = state.lag;
        let positions = state.positions();
        let mut engine = StreamingEngine::with_backend(self.net, lag, pin.model.sp_handle());
        if engine.restore(state).is_err() {
            metrics.on_rejected(RejectReason::Invalid);
            return Err(RejectReason::Invalid);
        }
        let stamp = self.stamp();
        self.sessions.insert(
            client,
            Session {
                engine,
                model: ClassicModel::new(
                    ClassicObservation::cellular(),
                    ClassicTransition::cellular(),
                    positions,
                ),
                pin,
                points: Vec::new(),
                last_touch: Instant::now(),
                stamp,
            },
        );
        metrics.on_session_imported();
        Ok(())
    }

    /// Drops every session without finalizing — the simulated crash path
    /// (and hard abort): in-flight state is lost exactly as a process kill
    /// would lose it. Returns how many were dropped.
    pub fn drop_all(&mut self) -> usize {
        let n = self.sessions.len();
        self.sessions.clear();
        n
    }
}

fn fresh_model() -> ClassicModel {
    ClassicModel::new(
        ClassicObservation::cellular(),
        ClassicTransition::cellular(),
        Vec::new(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use lhmm_cellsim::dataset::{Dataset, DatasetConfig};
    use lhmm_core::lhmm::{LhmmConfig, LhmmModel};
    use lhmm_core::registry::ModelRegistry;

    fn policy(max: usize, idle_ms: u64) -> SessionPolicy {
        SessionPolicy {
            max_sessions: max,
            idle_timeout: Duration::from_millis(idle_ms),
            lru_evict_min_idle: Duration::from_millis(1),
            ..Default::default()
        }
    }

    /// A v1 pin over a cheap classic-only model (the Arc outlives the
    /// registry it came from).
    fn pin_for(ds: &Dataset) -> Arc<VersionedModel> {
        let mut cfg = LhmmConfig::fast_test(1);
        cfg.use_learned_obs = false;
        cfg.use_learned_trans = false;
        ModelRegistry::new(LhmmModel::train(ds, cfg), "session-test").active()
    }

    #[test]
    fn open_push_finish_roundtrip() {
        let ds = Dataset::generate(&DatasetConfig::tiny_test(311));
        let metrics = ServeMetrics::new();
        let pin = pin_for(&ds);
        let mut mgr = SessionManager::new(&ds.network, &ds.index, policy(8, 60_000));
        mgr.open(1, 2, Arc::clone(&pin), &metrics).expect("open");
        let rec = &ds.test[0];
        let mut pushed = 0;
        for p in &rec.cellular.points {
            match mgr.push(1, p, &metrics) {
                Ok(_) => pushed += 1,
                Err(MatchError::NoCandidates) => {}
                Err(e) => panic!("unexpected push error {e}"),
            }
        }
        assert!(pushed > 0);
        let fin = mgr.finish(1, &metrics).expect("finish");
        assert!(!fin.path.is_empty());
        assert_eq!(fin.version, 1, "pinned to the admission version");
        assert_eq!(
            fin.points.len(),
            pushed,
            "exactly the accepted observations are kept for refresh stats"
        );
        assert!(mgr.is_empty());
    }

    #[test]
    fn unknown_session_is_a_typed_error() {
        let ds = Dataset::generate(&DatasetConfig::tiny_test(312));
        let metrics = ServeMetrics::new();
        let mut mgr = SessionManager::new(&ds.network, &ds.index, policy(8, 60_000));
        let p = ds.test[0].cellular.points[0];
        assert_eq!(
            mgr.push(77, &p, &metrics),
            Err(MatchError::EmptyTrajectory)
        );
        assert!(mgr.finish(77, &metrics).is_none());
    }

    #[test]
    fn cap_evicts_lru_or_sheds() {
        let ds = Dataset::generate(&DatasetConfig::tiny_test(313));
        let metrics = ServeMetrics::new();
        let pin = pin_for(&ds);
        let mut mgr = SessionManager::new(&ds.network, &ds.index, policy(2, 60_000));
        mgr.open(1, 0, Arc::clone(&pin), &metrics).expect("open 1");
        mgr.open(2, 0, Arc::clone(&pin), &metrics).expect("open 2");
        // Both sessions have a nonzero idle age by now, so the third open
        // evicts the LRU (client 1).
        std::thread::sleep(Duration::from_millis(2));
        mgr.open(3, 0, Arc::clone(&pin), &metrics)
            .expect("open 3 evicts LRU");
        assert_eq!(mgr.len(), 2);
        let p = ds.test[0].cellular.points[0];
        assert_eq!(mgr.push(1, &p, &metrics), Err(MatchError::EmptyTrajectory));
        let report = metrics.snapshot(0, mgr.len());
        assert_eq!(report.sessions_evicted_lru, 1);
    }

    #[test]
    fn active_sessions_are_not_cannibalized_at_the_cap() {
        let ds = Dataset::generate(&DatasetConfig::tiny_test(316));
        let metrics = ServeMetrics::new();
        let pin = pin_for(&ds);
        let mut mgr = SessionManager::new(
            &ds.network,
            &ds.index,
            SessionPolicy {
                max_sessions: 1,
                idle_timeout: Duration::from_secs(60),
                // Nothing this young may be LRU-evicted.
                lru_evict_min_idle: Duration::from_secs(60),
                ..Default::default()
            },
        );
        mgr.open(1, 0, Arc::clone(&pin), &metrics).expect("open");
        assert_eq!(
            mgr.open(2, 0, Arc::clone(&pin), &metrics),
            Err(RejectReason::SessionLimit)
        );
        assert_eq!(mgr.len(), 1);
        let report = metrics.snapshot(0, mgr.len());
        assert_eq!(report.rejected_for(RejectReason::SessionLimit), 1);
        assert_eq!(report.sessions_evicted_lru, 0);
    }

    #[test]
    fn idle_sessions_are_swept() {
        let ds = Dataset::generate(&DatasetConfig::tiny_test(314));
        let metrics = ServeMetrics::new();
        let pin = pin_for(&ds);
        let mut mgr = SessionManager::new(&ds.network, &ds.index, policy(8, 5));
        mgr.open(1, 0, Arc::clone(&pin), &metrics).expect("open");
        mgr.open(2, 0, Arc::clone(&pin), &metrics).expect("open");
        std::thread::sleep(Duration::from_millis(10));
        assert_eq!(mgr.sweep_idle(&metrics), 2);
        assert!(mgr.is_empty());
        let report = metrics.snapshot(0, 0);
        assert_eq!(report.sessions_evicted_idle, 2);
    }

    #[test]
    fn snapshot_import_handoff_matches_uninterrupted_session() {
        let ds = Dataset::generate(&DatasetConfig::tiny_test(317));
        let metrics = ServeMetrics::new();
        let pin = pin_for(&ds);
        let rec = &ds.test[0];
        let cut = rec.cellular.points.len() / 2;

        // Reference: one manager, one uninterrupted session.
        let mut solo = SessionManager::new(&ds.network, &ds.index, policy(8, 60_000));
        solo.open(1, 2, Arc::clone(&pin), &metrics).expect("open");
        let mut solo_commits = Vec::new();
        for p in &rec.cellular.points {
            solo_commits.push(solo.push(1, p, &metrics).ok());
        }
        let want = solo.finish(1, &metrics).expect("finish");

        // Handoff: push to A, snapshot at the cut, import into B, finish
        // there — the shard-to-shard journey of a boundary-crossing trip.
        let mut a = SessionManager::new(&ds.network, &ds.index, policy(8, 60_000));
        let mut b = SessionManager::new(&ds.network, &ds.index, policy(8, 60_000));
        a.open(1, 2, Arc::clone(&pin), &metrics).expect("open");
        let mut commits = Vec::new();
        for p in &rec.cellular.points[..cut] {
            commits.push(a.push(1, p, &metrics).ok());
        }
        let state = a.take_snapshot(1, &metrics).expect("session exists");
        assert!(a.is_empty(), "take semantics: session gone from source");
        assert!(a.finish(1, &metrics).is_none());
        b.import(1, state, Arc::clone(&pin), &metrics).expect("import");
        for p in &rec.cellular.points[cut..] {
            commits.push(b.push(1, p, &metrics).ok());
        }
        let got = b.finish(1, &metrics).expect("finish");
        assert_eq!(got.path.segments, want.path.segments);
        assert_eq!(got.version, want.version, "handoff keeps the pin");
        assert_eq!(commits, solo_commits, "commit cadence diverged");
        let report = metrics.snapshot(0, 0);
        assert_eq!(report.sessions_exported, 1);
        assert_eq!(report.sessions_imported, 1);
    }

    #[test]
    fn import_rejects_foreign_garbage_as_invalid() {
        let ds = Dataset::generate(&DatasetConfig::tiny_test(318));
        let metrics = ServeMetrics::new();
        let pin = pin_for(&ds);
        let mut mgr = SessionManager::new(&ds.network, &ds.index, policy(8, 60_000));
        mgr.open(1, 1, Arc::clone(&pin), &metrics).expect("open");
        for p in &ds.test[0].cellular.points[..4] {
            let _ = mgr.push(1, p, &metrics);
        }
        let mut state = mgr.take_snapshot(1, &metrics).expect("snapshot");
        // Point a candidate at a segment the destination network lacks.
        state.layers[0][0].seg = lhmm_network::graph::SegmentId(u32::MAX - 1);
        assert_eq!(
            mgr.import(1, state, Arc::clone(&pin), &metrics),
            Err(RejectReason::Invalid)
        );
        assert!(mgr.is_empty());
        let report = metrics.snapshot(0, 0);
        assert_eq!(report.rejected_for(RejectReason::Invalid), 1);
    }

    #[test]
    fn scoped_manager_matches_unscoped_manager_byte_for_byte() {
        use lhmm_network::tile::{TileGrid, TileScope};
        let ds = Dataset::generate(&DatasetConfig::tiny_test(319));
        // Halo = candidate radius: subset answers provably exact in-core.
        let grid = TileGrid::new(&ds.network, 2, 2, SessionPolicy::default().radius);
        let scopes: Vec<TileScope> = (0..grid.num_tiles())
            .map(|t| TileScope::build(&ds.network, &grid, t, ds.index.cell_size()))
            .collect();
        let metrics = ServeMetrics::new();
        let pin = pin_for(&ds);
        for (ci, rec) in ds.test.iter().take(4).enumerate() {
            let client = ci as u64;
            let mut plain = SessionManager::new(&ds.network, &ds.index, policy(8, 60_000));
            plain.open(client, 2, Arc::clone(&pin), &metrics).expect("open");
            // Pick the tile the trajectory starts in, like the router does.
            let first = rec.cellular.points[0].effective_pos();
            let tile = grid.assign(first);
            let mut scoped =
                SessionManager::new(&ds.network, &ds.index, policy(8, 60_000))
                    .with_scope(&scopes[tile]);
            scoped.open(client, 2, Arc::clone(&pin), &metrics).expect("open");
            for p in &rec.cellular.points {
                assert_eq!(
                    scoped.push(client, p, &metrics),
                    plain.push(client, p, &metrics),
                    "tile {tile} diverged"
                );
            }
            let want = plain.finish(client, &metrics).expect("finish");
            let got = scoped.finish(client, &metrics).expect("finish");
            assert_eq!(got.path.segments, want.path.segments);
        }
    }

    #[test]
    fn drop_all_loses_sessions_without_finalizing() {
        let ds = Dataset::generate(&DatasetConfig::tiny_test(320));
        let metrics = ServeMetrics::new();
        let pin = pin_for(&ds);
        let mut mgr = SessionManager::new(&ds.network, &ds.index, policy(8, 60_000));
        mgr.open(1, 0, Arc::clone(&pin), &metrics).expect("open");
        mgr.open(2, 0, Arc::clone(&pin), &metrics).expect("open");
        assert_eq!(mgr.drop_all(), 2);
        assert!(mgr.is_empty());
        // Nothing was finalized — the sessions just vanished (crash
        // semantics).
        assert_eq!(metrics.snapshot(0, 0).sessions_finalized, 0);
    }

    #[test]
    fn finalize_all_flushes_everything() {
        let ds = Dataset::generate(&DatasetConfig::tiny_test(315));
        let metrics = ServeMetrics::new();
        let pin = pin_for(&ds);
        let mut mgr = SessionManager::new(&ds.network, &ds.index, policy(8, 60_000));
        for id in 0..3 {
            mgr.open(id, 1, Arc::clone(&pin), &metrics).expect("open");
        }
        assert_eq!(mgr.finalize_all(&metrics), 3);
        assert!(mgr.is_empty());
        assert_eq!(metrics.snapshot(0, 0).sessions_finalized, 3);
    }
}
