//! Dynamic micro-batching: size-or-deadline batch formation over a bounded
//! admission queue, dispatched onto a pool of matching workers.
//!
//! # Shape
//!
//! ```text
//! submit() ──try_push──▶ BoundedQueue ──▶ scheduler thread ──▶ dispatch ──▶ worker 0..N
//!    │                     (admission)     forms batches by     channel      own HmmEngine
//!    └── RejectReason on full/closed       size OR deadline                  own SpCache shard
//! ```
//!
//! The scheduler pulls the first request, then keeps pulling until the
//! batch reaches `max_batch` **or** `max_wait` has elapsed since the batch
//! opened — the standard inference-serving trade-off: under load batches
//! fill instantly (throughput), when idle a lone request waits at most
//! `max_wait` (latency).
//!
//! Workers mirror the PR 1 batch-matcher design: each owns a private
//! [`HmmEngine`] whose [`SpCache`] shard it alone mutates and whose scratch
//! arenas recycle across requests, so results are byte-identical to serial
//! matching no matter how requests are batched or interleaved (cache state
//! never changes answers — see `lhmm_core::batch`).

use crate::admission::{BoundedQueue, PushError, RejectReason};
use crate::metrics::ServeMetrics;
use lhmm_cellsim::traj::CellularTrajectory;
use lhmm_core::error::MatchError;
use lhmm_core::registry::{ModelRegistry, VersionedModel};
use lhmm_core::types::{MatchContext, MatchResult, MatchStats};
use lhmm_core::viterbi::HmmEngine;
use lhmm_network::sp_cache::SpCache;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc;
use std::sync::Arc;
use std::thread::{Scope, ScopedJoinHandle};
use std::time::{Duration, Instant};

use lhmm_core::sync::{rank, OrderedMutex};

/// Everything a worker needs to match on behalf of the service.
#[derive(Clone, Copy)]
pub struct ServeCtx<'a> {
    /// Road network, spatial index, tower field.
    pub ctx: MatchContext<'a>,
    /// The versioned model registry, shared read-only across every thread.
    /// Requests resolve (and pin) the active version at admission, so a
    /// hot swap never changes what an in-flight request serves.
    pub registry: &'a ModelRegistry,
    /// Tile view when this instance serves one shard of a cluster
    /// (`None` for unsharded serving). Streaming candidate preparation for
    /// in-core positions uses the tile's subset index; one-shots and
    /// out-of-core positions always use the full `ctx.index`, so results
    /// are byte-identical to unsharded serving either way.
    pub scope: Option<&'a lhmm_network::tile::TileScope>,
}

/// Micro-batching parameters.
#[derive(Clone, Debug)]
pub struct BatchPolicy {
    /// Maximum requests per dispatched batch.
    pub max_batch: usize,
    /// Maximum time a forming batch waits for more requests.
    pub max_wait: Duration,
    /// Admission-queue capacity (requests waiting for a batch slot).
    pub queue_capacity: usize,
    /// Worker threads (each with a private cache shard). Min 1.
    pub workers: usize,
    /// Per-worker shortest-path cache capacity, node pairs.
    pub cache_capacity: usize,
    /// Artificial per-request service latency, for overload experiments
    /// and scheduler benchmarks (simulates a heavier model; keep
    /// `Duration::ZERO` in production).
    pub service_delay: Duration,
}

impl Default for BatchPolicy {
    fn default() -> Self {
        BatchPolicy {
            max_batch: 16,
            max_wait: Duration::from_millis(2),
            queue_capacity: 256,
            workers: 2,
            cache_capacity: HmmEngine::DEFAULT_CACHE_CAPACITY,
            service_delay: Duration::ZERO,
        }
    }
}

/// The verdict a submitted request resolves to.
pub type MatchReply = Result<(MatchResult, MatchStats), MatchError>;

/// One queued one-shot request. The model version is resolved — and
/// thereby pinned — at admission: `pin` keeps its `Arc` alive until the
/// reply is sent, no matter how many swaps happen in between.
struct Job {
    traj: CellularTrajectory,
    enqueued: Instant,
    reply: mpsc::Sender<MatchReply>,
    /// The version this request serves (the active version at admission).
    pin: Arc<VersionedModel>,
    /// Candidate version to mirror this request through (shadow A/B); the
    /// mirrored verdict is compared and recorded, never sent to the client.
    shadow: Option<Arc<VersionedModel>>,
}

/// Handle to a running micro-batch scheduler + worker pool.
///
/// Created by [`MicroBatcher::start`] inside a [`std::thread::scope`]; all
/// threads join in [`MicroBatcher::drain`] (which the caller must invoke
/// before the scope closes, or the scope will block on the scheduler's
/// polling loop until `drain` is called from another thread).
pub struct MicroBatcher<'scope, 'env> {
    queue: Arc<BoundedQueue<Job>>,
    metrics: Arc<ServeMetrics>,
    registry: &'env ModelRegistry,
    draining: Arc<AtomicBool>,
    threads: OrderedMutex<Vec<ScopedJoinHandle<'scope, ()>>>,
    _env: std::marker::PhantomData<&'env ()>,
}

impl<'scope, 'env> MicroBatcher<'scope, 'env> {
    /// Spawns the scheduler thread and `policy.workers` matching workers
    /// into `scope`.
    pub fn start(
        scope: &'scope Scope<'scope, 'env>,
        serve: ServeCtx<'env>,
        policy: BatchPolicy,
        metrics: Arc<ServeMetrics>,
    ) -> Self {
        let queue = Arc::new(BoundedQueue::new(policy.queue_capacity));
        let draining = Arc::new(AtomicBool::new(false));
        let workers = policy.workers.max(1);
        let (dispatch_tx, dispatch_rx) = mpsc::sync_channel::<Vec<Job>>(workers);
        // Rank-ordered (DESIGN §15): workers take this below the queue lock.
        let dispatch_rx = Arc::new(OrderedMutex::new(
            rank::SCHEDULER_DISPATCH,
            "scheduler.dispatch",
            dispatch_rx,
        ));

        let mut threads = Vec::with_capacity(workers + 1);

        // Scheduler: size-or-deadline batch formation.
        {
            let queue = Arc::clone(&queue);
            let metrics = Arc::clone(&metrics);
            let max_batch = policy.max_batch.max(1);
            let max_wait = policy.max_wait;
            threads.push(scope.spawn(move || {
                loop {
                    // Block (with a shutdown-observing timeout) for the
                    // batch's first request.
                    let first = match queue.pop_timeout(Duration::from_millis(20)) {
                        Some(j) => j,
                        None => {
                            if queue.is_closed() && queue.is_empty() {
                                break; // drained
                            }
                            continue;
                        }
                    };
                    let opened = Instant::now();
                    let mut batch = vec![first];
                    while batch.len() < max_batch {
                        let Some(remaining) = max_wait.checked_sub(opened.elapsed()) else {
                            break;
                        };
                        match queue.pop_timeout(remaining) {
                            Some(j) => batch.push(j),
                            None => break, // deadline or closed-and-empty
                        }
                    }
                    metrics.on_batch(batch.len());
                    if dispatch_tx.send(batch).is_err() {
                        break; // workers gone (only during teardown)
                    }
                }
                // Dropping the sender lets workers drain and exit.
                drop(dispatch_tx);
            }));
        }

        // Workers: each owns one engine (private cache shard) per model
        // version it has served, built lazily on the first job pinned to
        // that version. Engines borrow only the road network, so they
        // survive swaps; the per-version keying keeps each engine's config
        // and shortest-path backend consistent with the model it serves.
        for _ in 0..workers {
            let dispatch_rx = Arc::clone(&dispatch_rx);
            let metrics = Arc::clone(&metrics);
            let delay = policy.service_delay;
            let cache_capacity = policy.cache_capacity;
            threads.push(scope.spawn(move || {
                fn engine_for<'m>(
                    engines: &'m mut BTreeMap<u32, HmmEngine>,
                    net: &lhmm_network::graph::RoadNetwork,
                    cache_capacity: usize,
                    entry: &VersionedModel,
                ) -> &'m mut HmmEngine {
                    engines.entry(entry.manifest.version.0).or_insert_with(|| {
                        let cache =
                            SpCache::with_backend(net, cache_capacity, entry.model.sp_handle());
                        HmmEngine::with_cache(net, entry.model.engine_config(), cache)
                    })
                }
                let mut engines: BTreeMap<u32, HmmEngine> = BTreeMap::new();
                loop {
                    let batch = {
                        // Single-consumer hand-off by design: idle workers
                        // serialize on the dispatch mutex and block in
                        // `recv` until the scheduler forms a batch; no
                        // other lock is held.
                        let rx = dispatch_rx.lock();
                        // lint:allow(guard-across-blocking): intended dispatch wait
                        rx.recv()
                    };
                    let Ok(batch) = batch else {
                        break; // scheduler hung up: drain complete
                    };
                    for job in batch {
                        let queue_wait = job.enqueued.elapsed().as_secs_f64();
                        if !delay.is_zero() {
                            std::thread::sleep(delay);
                        }
                        let pinned = job.pin.manifest.version.0;
                        let started = Instant::now();
                        let engine =
                            engine_for(&mut engines, serve.ctx.net, cache_capacity, &job.pin);
                        let mut verdict =
                            job.pin
                                .model
                                .try_match_with_engine_stats(&serve.ctx, &job.traj, engine);
                        let service = started.elapsed().as_secs_f64();
                        if let Ok((_, s)) = &mut verdict {
                            s.model_version = pinned;
                        }
                        let stats = match &verdict {
                            Ok((_, s)) => *s,
                            Err(_) => MatchStats {
                                model_version: pinned,
                                ..MatchStats::default()
                            },
                        };
                        metrics.on_completed(queue_wait, service, &stats);
                        // Successful matches feed the online refresh
                        // statistics collector.
                        if let Ok((result, _)) = &verdict {
                            serve.registry.observe(
                                serve.ctx.net,
                                &job.traj.points,
                                &result.path.segments,
                            );
                        }
                        // Shadow A/B: re-match the mirrored request on the
                        // candidate version and record whether its verdict
                        // diverges. The mirror never reaches the client.
                        if let Some(cand) = &job.shadow {
                            let shadow_started = Instant::now();
                            let shadow_engine =
                                engine_for(&mut engines, serve.ctx.net, cache_capacity, cand);
                            let shadow_verdict = cand.model.try_match_with_engine_stats(
                                &serve.ctx,
                                &job.traj,
                                shadow_engine,
                            );
                            let shadow_service = shadow_started.elapsed().as_secs_f64();
                            let diverged = match (&verdict, &shadow_verdict) {
                                (Ok((a, _)), Ok((b, _))) => a.path.segments != b.path.segments,
                                (Err(_), Err(_)) => false,
                                _ => true,
                            };
                            metrics.on_shadow(cand.manifest.version.0, shadow_service, diverged);
                        }
                        if job.reply.send(verdict).is_err() {
                            metrics.on_orphaned_reply();
                        }
                    }
                }
            }));
        }

        MicroBatcher {
            queue,
            metrics,
            registry: serve.registry,
            draining,
            threads: OrderedMutex::new(rank::SCHEDULER_THREADS, "scheduler.threads", threads),
            _env: std::marker::PhantomData,
        }
    }

    /// Submits one trajectory for matching. On admission returns the
    /// receiver the reply will arrive on; otherwise the typed shed reason.
    ///
    /// Admission is the pinning moment: the active model version (and the
    /// shadow candidate, on mirrored admissions) is resolved here, so a
    /// swap that lands after this call cannot change what this request
    /// serves.
    pub fn submit(
        &self,
        traj: CellularTrajectory,
    ) -> Result<mpsc::Receiver<MatchReply>, RejectReason> {
        if self.draining.load(Ordering::Acquire) {
            self.metrics.on_rejected(RejectReason::ShuttingDown);
            return Err(RejectReason::ShuttingDown);
        }
        let (tx, rx) = mpsc::channel();
        let job = Job {
            traj,
            enqueued: Instant::now(),
            reply: tx,
            pin: self.registry.active(),
            shadow: self.registry.shadow_pick(),
        };
        match self.queue.try_push(job) {
            Ok(()) => {
                self.metrics.on_admitted(self.queue.len());
                Ok(rx)
            }
            Err((PushError::Full, _)) => {
                self.metrics.on_rejected(RejectReason::QueueFull);
                Err(RejectReason::QueueFull)
            }
            Err((PushError::Closed, _)) => {
                self.metrics.on_rejected(RejectReason::ShuttingDown);
                Err(RejectReason::ShuttingDown)
            }
        }
    }

    /// Instantaneous admission-queue depth.
    pub fn queue_depth(&self) -> usize {
        self.queue.len()
    }

    /// Stops admissions, flushes every queued request through the workers,
    /// and joins all scheduler/worker threads. Every admitted request gets
    /// its reply before this returns — nothing in flight is dropped.
    pub fn drain(&self) {
        self.draining.store(true, Ordering::Release);
        self.queue.close();
        let threads = {
            let mut guard = self.threads.lock();
            std::mem::take(&mut *guard)
        };
        for t in threads {
            if t.join().is_err() {
                // A panicked worker is a bug elsewhere; drain keeps going
                // so the remaining threads still join and the report is
                // produced (the panic is visible in the worker's test).
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lhmm_cellsim::dataset::{Dataset, DatasetConfig};
    use lhmm_core::lhmm::{LhmmConfig, LhmmModel};
    use std::thread;

    fn cheap_model(ds: &Dataset, seed: u64) -> LhmmModel {
        let mut cfg = LhmmConfig::fast_test(seed);
        cfg.use_learned_obs = false;
        cfg.use_learned_trans = false;
        LhmmModel::train(ds, cfg)
    }

    #[test]
    fn batcher_matches_equal_to_serial_and_drains_clean() {
        let ds = Dataset::generate(&DatasetConfig::tiny_test(301));
        let model = cheap_model(&ds, 301);
        let ctx = MatchContext {
            net: &ds.network,
            index: &ds.index,
            towers: &ds.towers,
        };
        // Serial reference.
        let mut engine = HmmEngine::new(&ds.network, model.engine_config());
        let want: Vec<_> = ds
            .test
            .iter()
            .map(|r| model.match_with_engine(&ctx, &r.cellular, &mut engine))
            .collect();

        let registry = ModelRegistry::new(model, "test");
        let metrics = Arc::new(ServeMetrics::new());
        let policy = BatchPolicy {
            max_batch: 4,
            max_wait: Duration::from_millis(1),
            workers: 2,
            ..Default::default()
        };
        let got: Vec<_> = thread::scope(|s| {
            let batcher = MicroBatcher::start(
                s,
                ServeCtx { ctx, registry: &registry, scope: None },
                policy,
                Arc::clone(&metrics),
            );
            let receivers: Vec<_> = ds
                .test
                .iter()
                .map(|r| batcher.submit(r.cellular.clone()).expect("admitted"))
                .collect();
            let got = receivers
                .into_iter()
                .map(|rx| rx.recv().expect("reply").expect("matched").0)
                .collect();
            batcher.drain();
            got
        });
        for (g, w) in got.iter().zip(&want) {
            assert_eq!(g.path.segments, w.path.segments);
        }
        let report = metrics.snapshot(0, 0);
        assert_eq!(report.admitted, ds.test.len() as u64);
        assert_eq!(report.completed, ds.test.len() as u64);
        assert_eq!(report.in_flight_lost(), 0);
        assert!(report.batches > 0);
        assert!(report.mean_batch_occupancy() >= 1.0);
        assert!(report.queue_wait.count() == ds.test.len() as u64);
    }

    #[test]
    fn submissions_after_drain_are_shed_as_shutting_down() {
        let ds = Dataset::generate(&DatasetConfig::tiny_test(302));
        let model = cheap_model(&ds, 302);
        let ctx = MatchContext {
            net: &ds.network,
            index: &ds.index,
            towers: &ds.towers,
        };
        let registry = ModelRegistry::new(model, "test");
        let metrics = Arc::new(ServeMetrics::new());
        thread::scope(|s| {
            let batcher = MicroBatcher::start(
                s,
                ServeCtx { ctx, registry: &registry, scope: None },
                BatchPolicy::default(),
                Arc::clone(&metrics),
            );
            batcher.drain();
            let err = batcher
                .submit(ds.test[0].cellular.clone())
                .expect_err("must shed");
            assert_eq!(err, RejectReason::ShuttingDown);
        });
        assert_eq!(
            metrics
                .snapshot(0, 0)
                .rejected_for(RejectReason::ShuttingDown),
            1
        );
    }

    #[test]
    fn full_queue_sheds_with_queue_full() {
        let ds = Dataset::generate(&DatasetConfig::tiny_test(303));
        let model = cheap_model(&ds, 303);
        let ctx = MatchContext {
            net: &ds.network,
            index: &ds.index,
            towers: &ds.towers,
        };
        let registry = ModelRegistry::new(model, "test");
        let metrics = Arc::new(ServeMetrics::new());
        let policy = BatchPolicy {
            queue_capacity: 1,
            workers: 1,
            max_batch: 1,
            // Slow service so the queue backs up deterministically.
            service_delay: Duration::from_millis(50),
            ..Default::default()
        };
        thread::scope(|s| {
            let batcher = MicroBatcher::start(
                s,
                ServeCtx { ctx, registry: &registry, scope: None },
                policy,
                Arc::clone(&metrics),
            );
            let mut receivers = Vec::new();
            let mut shed = 0;
            for _ in 0..6 {
                match batcher.submit(ds.test[0].cellular.clone()) {
                    Ok(rx) => receivers.push(rx),
                    Err(reason) => {
                        assert_eq!(reason, RejectReason::QueueFull);
                        shed += 1;
                    }
                }
            }
            assert!(shed > 0, "queue never filled");
            // Every admitted request still completes.
            for rx in receivers {
                let _ = rx.recv().expect("admitted requests are served");
            }
            batcher.drain();
        });
        let report = metrics.snapshot(0, 0);
        assert_eq!(report.in_flight_lost(), 0);
        assert!(report.rejected_for(RejectReason::QueueFull) > 0);
    }

    #[test]
    fn shadow_mirrors_never_leak_and_lanes_slice_by_version() {
        use lhmm_core::registry::ModelVersion;

        let ds = Dataset::generate(&DatasetConfig::tiny_test(304));
        let model = cheap_model(&ds, 304);
        let mut candidate = model.clone();
        // A structurally different candidate set: verdicts may diverge.
        candidate.config.k = 3;
        let ctx = MatchContext {
            net: &ds.network,
            index: &ds.index,
            towers: &ds.towers,
        };
        // Offline references on both versions; the expected divergence
        // count is derived here, not guessed.
        let mut e1 = HmmEngine::new(&ds.network, model.engine_config());
        let want1: Vec<_> = ds
            .test
            .iter()
            .map(|r| model.match_with_engine(&ctx, &r.cellular, &mut e1).path.segments)
            .collect();
        let mut e2 = HmmEngine::new(&ds.network, candidate.engine_config());
        let want2: Vec<_> = ds
            .test
            .iter()
            .map(|r| candidate.match_with_engine(&ctx, &r.cellular, &mut e2).path.segments)
            .collect();
        let expected_div = want1.iter().zip(&want2).filter(|(a, b)| a != b).count() as u64;

        let registry = ModelRegistry::new(model, "seed");
        let v2 = registry.register(candidate, "candidate", Some(ModelVersion(1)));
        registry.set_shadow(v2, 1).expect("candidate exists");

        let metrics = Arc::new(ServeMetrics::new());
        thread::scope(|s| {
            let batcher = MicroBatcher::start(
                s,
                ServeCtx { ctx, registry: &registry, scope: None },
                BatchPolicy::default(),
                Arc::clone(&metrics),
            );
            let receivers: Vec<_> = ds
                .test
                .iter()
                .map(|r| batcher.submit(r.cellular.clone()).expect("admitted"))
                .collect();
            for (rx, want) in receivers.into_iter().zip(&want1) {
                let (result, stats) = rx.recv().expect("reply").expect("matched");
                // Clients always get the pinned (active) version's verdict.
                assert_eq!(&result.path.segments, want);
                assert_eq!(stats.model_version, 1);
            }
            batcher.drain();
        });
        let report = metrics.snapshot(0, 0);
        let n = ds.test.len() as u64;
        assert_eq!(report.shadow_served, n, "mirror_every=1 mirrors everything");
        assert_eq!(report.shadow_divergences, expected_div);
        assert_eq!(report.versions.lanes[&1].served, n);
        assert_eq!(report.versions.lanes[&2].shadow_served, n);
        // Served matches accumulated refresh statistics.
        let stats = registry.stats();
        assert_eq!(stats.observed_matches, n);
        assert!(!stats.is_empty());
    }
}
