//! Geo-sharded cluster serving: a tile router in front of per-tile shard
//! servers, with byte-exact streaming handoff and crash supervision.
//!
//! ```text
//! clients ──▶ router (TCP front end, same wire protocol)
//!               │  one-shots: routed by the first point's tile
//!               │  sessions:  routed per push; crossing a tile boundary
//!               │             snapshots the beam state off the old shard
//!               │             and restores it on the new one
//!               ▼
//!         supervisor ──▶ shard 0 .. shard N-1  (one ServerHandle per tile)
//!               │             each holds the FULL road network (shortest
//!               │             paths legally span the whole map) plus its
//!               │             tile's subset spatial index for in-core
//!               │             streaming candidate lookups
//!               └ health-pings every shard; restarts dead ones with
//!                 bounded backoff
//! ```
//!
//! **Exactness contract.** A cluster produces byte-identical verdicts to a
//! single unsharded server, which itself matches serial offline streaming:
//!
//! * Candidate preparation uses the tile's subset index only for positions
//!   inside the tile core (where the halo provably covers the search
//!   radius); everything else falls back to the full index — see
//!   [`crate::session::SessionManager::with_scope`].
//! * Handoff moves the raw fixed-lag beam state
//!   ([`lhmm_core::streaming::BeamState`]) between shards over the
//!   versioned snapshot/restore frames; restore is lossless, so the
//!   continued session is bitwise the session that never moved.
//! * Crash recovery replays the router's journal of accepted pushes onto a
//!   restarted shard. The beam state is a pure deterministic function of
//!   the accepted `(position, time, layer)` sequence, so the rebuilt
//!   session is byte-identical to one that never crashed — a killed shard
//!   loses nothing that was admitted.
//!
//! Known divergence from single-process serving: `Open` is deferred (the
//! tile is unknown until the first located push), so a
//! [`RejectReason::SessionLimit`] shed surfaces at the first `Push` rather
//! than at `Open`.

use crate::admission::RejectReason;
use crate::metrics::{ServeMetrics, ServeReport};
use crate::protocol::{
    read_request, read_response, write_request, write_response, Request, Response,
    WireMatchError,
};
use crate::scheduler::ServeCtx;
use crate::server::{ServeConfig, ServerHandle};
use lhmm_cellsim::traj::CellularPoint;
use lhmm_core::registry::{ModelRegistry, ModelVersion, RegistryError};
use lhmm_geo::Point;
use lhmm_network::graph::RoadNetwork;
use lhmm_network::spatial::SpatialIndex;
use lhmm_network::tile::{TileGrid, TileScope};
use std::collections::HashMap;
use std::fmt::Write as _;
use std::io;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use lhmm_core::sync::{rank, OrderedMutex};
use std::sync::Arc;
use std::thread::{Scope, ScopedJoinHandle};
use std::time::Duration;

/// Cluster-wide configuration (the grid itself lives in
/// [`ClusterTopology`], which must outlive the serving scope).
#[derive(Clone, Debug)]
pub struct ClusterConfig {
    /// Per-shard server configuration.
    pub shard: ServeConfig,
    /// Restart budget per shard; once exhausted the tile stays down and
    /// its requests are shed.
    pub max_restarts: u32,
    /// Supervisor health-ping cadence.
    pub ping_interval: Duration,
}

impl Default for ClusterConfig {
    fn default() -> Self {
        ClusterConfig {
            shard: ServeConfig::default(),
            max_restarts: 4,
            ping_interval: Duration::from_millis(20),
        }
    }
}

/// The immutable sharding plan: a [`TileGrid`] plus one pre-built
/// [`TileScope`] (halo subset index) per tile. Built once outside the
/// serving scope so shard threads can borrow it.
pub struct ClusterTopology {
    grid: TileGrid,
    scopes: Vec<TileScope>,
}

impl ClusterTopology {
    /// Partitions `net` into `cols x rows` tiles with `halo` metres of
    /// overlap, building each tile's subset index at the same cell size as
    /// `index` (identical cell size + origin is what makes subset lookups
    /// byte-identical to full-index lookups for in-core positions).
    pub fn build(
        net: &RoadNetwork,
        index: &SpatialIndex,
        cols: usize,
        rows: usize,
        halo: f64,
    ) -> Self {
        let grid = TileGrid::new(net, cols, rows, halo);
        let scopes = (0..grid.num_tiles())
            .map(|t| TileScope::build(net, &grid, t, index.cell_size()))
            .collect();
        ClusterTopology { grid, scopes }
    }

    /// The tile grid (assignment + geometry).
    pub fn grid(&self) -> &TileGrid {
        &self.grid
    }

    /// Number of tiles (= shards).
    pub fn num_tiles(&self) -> usize {
        self.scopes.len()
    }

    /// The pre-built scope for one tile.
    pub fn scope(&self, tile: usize) -> &TileScope {
        &self.scopes[tile]
    }

    /// The tile a position routes to — a pure function of the position
    /// (boundary ties break to the lower tile id, off-map positions go to
    /// the nearest core).
    pub fn route(&self, pos: Point) -> usize {
        self.grid.assign(pos)
    }
}

fn empty_report() -> ServeReport {
    ServeMetrics::new().snapshot(0, 0)
}

/// One shard slot: the live handle (None while down) and its consumed
/// restart budget.
struct ShardSlot<'scope, 'env> {
    handle: Option<ServerHandle<'scope, 'env>>,
    restarts: u32,
}

/// Spawns, health-checks, kills, and restarts shard servers. Restart state
/// is per-slot behind its own mutex so the router and the monitor thread
/// can both drive recovery without coordinating.
struct Supervisor<'scope, 'env> {
    scope: &'scope Scope<'scope, 'env>,
    serves: Vec<ServeCtx<'env>>,
    shard_config: ServeConfig,
    max_restarts: u32,
    slots: Vec<OrderedMutex<ShardSlot<'scope, 'env>>>,
    /// Final reports of aborted (crashed) shard generations, folded in as
    /// they die so nothing is lost from the cluster rollup.
    dead: OrderedMutex<ServeReport>,
    restarts_total: AtomicU64,
}

impl<'scope, 'env> Supervisor<'scope, 'env> {
    fn start(
        scope: &'scope Scope<'scope, 'env>,
        serves: Vec<ServeCtx<'env>>,
        shard_config: ServeConfig,
        max_restarts: u32,
    ) -> io::Result<Self> {
        let slots = serves
            .iter()
            .map(|serve| {
                let handle = ServerHandle::start(scope, *serve, shard_config.clone())?;
                // Rank-ordered (DESIGN §15): slots sit above the dead
                // rollup and below the router's session/conn locks.
                Ok(OrderedMutex::new(rank::SUPERVISOR_SLOT, "supervisor.slot", ShardSlot {
                    handle: Some(handle),
                    restarts: 0,
                }))
            })
            .collect::<io::Result<Vec<_>>>()?;
        Ok(Supervisor {
            scope,
            serves,
            shard_config,
            max_restarts,
            slots,
            dead: OrderedMutex::new(rank::SUPERVISOR_DEAD, "supervisor.dead", empty_report()),
            restarts_total: AtomicU64::new(0),
        })
    }

    /// Hard-kills the shard serving `tile` (the simulated crash): open
    /// sessions are dropped unfinalized. Returns false when already down.
    fn kill(&self, tile: usize) -> bool {
        let mut slot = self.slots[tile].lock();
        match slot.handle.take() {
            Some(h) => {
                let report = h.abort();
                self.dead.lock().merge(&report);
                true
            }
            None => false,
        }
    }

    /// Returns the address of a live shard for `tile`, restarting a dead
    /// one within the bounded budget (backoff doubles per consumed
    /// restart). `None` means the budget is exhausted and the tile is
    /// permanently down.
    fn ensure_alive(&self, tile: usize) -> Option<SocketAddr> {
        // Claim a restart and compute the backoff with the slot lock held,
        // but SLEEP WITH IT RELEASED: dozing under the guard would stall
        // the monitor and every router call targeting this tile for the
        // whole backoff window (this was a real guard-across-blocking
        // finding; see DESIGN §15).
        let backoff = {
            let mut slot = self.slots[tile].lock();
            if let Some(h) = &slot.handle {
                return Some(h.addr());
            }
            if slot.restarts >= self.max_restarts {
                return None;
            }
            slot.restarts += 1;
            Duration::from_millis(1u64 << slot.restarts.min(6))
        };
        std::thread::sleep(backoff);
        let mut slot = self.slots[tile].lock();
        if let Some(addr) = slot.handle.as_ref().map(|h| h.addr()) {
            // A concurrent caller restarted the shard while we slept:
            // refund the restart we claimed — no generation was consumed.
            slot.restarts -= 1;
            return Some(addr);
        }
        match ServerHandle::start(self.scope, self.serves[tile], self.shard_config.clone()) {
            Ok(h) => {
                self.restarts_total.fetch_add(1, Ordering::Relaxed);
                let addr = h.addr();
                slot.handle = Some(h);
                Some(addr)
            }
            Err(_) => None,
        }
    }

    /// One monitor sweep: ping every shard, tear down any that does not
    /// answer, and restart the dead within budget.
    fn health_check(&self) {
        for tile in 0..self.slots.len() {
            let addr = self.slots[tile]
                .lock()
                .handle
                .as_ref()
                .map(|h| h.addr());
            let alive = match addr {
                Some(a) => ping(a),
                None => false,
            };
            if !alive {
                if addr.is_some() {
                    self.kill(tile);
                }
                let _ = self.ensure_alive(tile);
            }
        }
    }

    /// Live rollup across running shards plus everything already dead.
    fn report(&self) -> ServeReport {
        let mut merged = self.dead.lock().clone();
        for slot in &self.slots {
            let slot = slot.lock();
            if let Some(h) = &slot.handle {
                merged.merge(&h.report());
            }
        }
        merged
    }

    /// Gracefully drains every running shard and returns the full rollup
    /// (drained + previously dead generations).
    fn drain_all(&self) -> ServeReport {
        let mut merged = self.dead.lock().clone();
        for slot in &self.slots {
            let handle = slot.lock().handle.take();
            if let Some(h) = handle {
                merged.merge(&h.shutdown_and_drain());
            }
        }
        merged
    }
}

/// One health ping over a throwaway connection.
fn ping(addr: SocketAddr) -> bool {
    let Ok(mut stream) = TcpStream::connect(addr) else {
        return false;
    };
    let _ = stream.set_nodelay(true);
    if write_request(&mut stream, &Request::Ping).is_err() {
        return false;
    }
    matches!(read_response(&mut stream), Ok(Response::Pong { .. }))
}

/// Router-side record of one streaming session.
struct SessionEntry {
    /// Shard currently holding the session (`None` until the first
    /// located push, or after a failed placement).
    tile: Option<usize>,
    /// Fixed lag requested at `Open`, replayed on shard-side opens.
    lag: u32,
    /// Model version the session was pinned to at router admission,
    /// resolved to a concrete number (never 0) so handoffs, replays, and
    /// restarted shards all re-open under the *original* pin even if the
    /// active version swapped since — one session, one version, always.
    version: u32,
    /// Every accepted push since `Open`, in order. The beam state is a
    /// pure function of this sequence, so replaying it onto a fresh shard
    /// rebuilds the session byte-exactly. Failed pushes are not recorded
    /// (the shard engine rejected the layer and undid it).
    journal: Vec<CellularPoint>,
}

struct RouterShared<'scope, 'env> {
    topology: &'env ClusterTopology,
    supervisor: Supervisor<'scope, 'env>,
    /// The cluster-wide registry all shards share. Model-plane requests
    /// (swap/shadow/refresh) act on it once, here — every shard observes
    /// the change atomically, so shards can never disagree on the active
    /// version.
    registry: &'env ModelRegistry,
    sessions: OrderedMutex<HashMap<u64, SessionEntry>>,
    /// Router-plane metrics: sheds the router itself issues (shards never
    /// see those requests, so merging with shard reports double-counts
    /// nothing).
    metrics: Arc<ServeMetrics>,
    shutting_down: AtomicBool,
    monitor_stop: AtomicBool,
    /// One pooled connection per shard; session ops are serialized by the
    /// sessions mutex, one-shots serialize per tile on these locks.
    conns: Vec<OrderedMutex<Option<(SocketAddr, TcpStream)>>>,
    peers: OrderedMutex<Vec<TcpStream>>,
    handlers: OrderedMutex<Vec<ScopedJoinHandle<'scope, ()>>>,
    handoffs: AtomicU64,
    replays: AtomicU64,
}

impl RouterShared<'_, '_> {
    /// One request/response exchange with the shard serving `tile`, over
    /// the pooled connection. A transport failure tears the shard down and
    /// retries (the supervisor restarts it within budget); `None` means
    /// the tile is unreachable for good.
    fn rpc(&self, tile: usize, req: &Request) -> Option<Response> {
        let mut conn = self.conns[tile].lock();
        for _ in 0..3 {
            let addr = self.supervisor.ensure_alive(tile)?;
            if conn.as_ref().map(|(a, _)| *a) != Some(addr) {
                *conn = None;
            }
            if conn.is_none() {
                // The conn mutex EXISTS to serialize this tile's stream;
                // connect is part of the critical section it protects.
                // lint:allow(guard-across-blocking): intended per-tile serialization
                match TcpStream::connect(addr) {
                    Ok(s) => {
                        let _ = s.set_nodelay(true);
                        *conn = Some((addr, s));
                    }
                    Err(_) => {
                        // Live handle, dead listener: the shard is gone.
                        self.supervisor.kill(tile);
                        continue;
                    }
                }
            }
            if let Some((_, stream)) = conn.as_mut() {
                // Request/response pairs on the pooled stream must not
                // interleave across threads; holding the conn guard across
                // the exchange is the point.
                // lint:allow(guard-across-blocking): intended per-tile serialization
                if write_request(stream, req).is_ok() {
                    // lint:allow(guard-across-blocking): same exchange as the write above
                    if let Ok(resp) = read_response(stream) {
                        return Some(resp);
                    }
                }
            }
            // The shard died mid-exchange: drop the connection and let
            // the next attempt restart it.
            *conn = None;
            self.supervisor.kill(tile);
        }
        None
    }

    /// Rebuilds `client`'s session on `tile` by replaying the journal.
    /// Byte-exact: the beam state is a pure function of the accepted push
    /// sequence. Returns the rejection to forward on failure.
    fn replay(
        &self,
        entry: &mut SessionEntry,
        client: u64,
        tile: usize,
    ) -> Result<(), RejectReason> {
        entry.tile = None;
        let open = Request::Open {
            client,
            lag: entry.lag,
            version: entry.version,
        };
        match self.rpc(tile, &open) {
            Some(Response::Pushed { .. }) => {}
            Some(Response::Reject(r)) => return Err(r),
            _ => return Err(RejectReason::ShuttingDown),
        }
        for point in &entry.journal {
            match self.rpc(tile, &Request::Push { client, point: *point }) {
                Some(Response::Pushed { .. }) => {}
                Some(Response::Reject(r)) => return Err(r),
                // A journaled push was accepted once and replay is
                // deterministic — anything else is a dead shard.
                _ => return Err(RejectReason::ShuttingDown),
            }
        }
        if !entry.journal.is_empty() {
            self.replays.fetch_add(1, Ordering::Relaxed);
        }
        entry.tile = Some(tile);
        Ok(())
    }

    /// Ensures `client`'s shard-side session lives on `target`: a no-op
    /// when already there, a snapshot/restore handoff when on another
    /// shard, a journal replay when nowhere (fresh, or lost to a crash).
    fn place(
        &self,
        entry: &mut SessionEntry,
        client: u64,
        target: usize,
    ) -> Result<(), RejectReason> {
        match entry.tile {
            Some(t) if t == target => Ok(()),
            Some(old) => match self.rpc(old, &Request::Snapshot { client }) {
                Some(Response::State { state }) => {
                    let restore = Request::Restore {
                        client,
                        version: entry.version,
                        state,
                    };
                    match self.rpc(target, &restore) {
                        Some(Response::Pushed { .. }) => {
                            self.handoffs.fetch_add(1, Ordering::Relaxed);
                            entry.tile = Some(target);
                            Ok(())
                        }
                        Some(Response::Reject(r)) => {
                            // The snapshot already evicted the session from
                            // `old`; the journal is now the only copy.
                            entry.tile = None;
                            Err(r)
                        }
                        _ => self.replay(entry, client, target),
                    }
                }
                // The old shard lost the session (crash + restart) or is
                // gone entirely: rebuild from the journal instead.
                _ => self.replay(entry, client, target),
            },
            None => self.replay(entry, client, target),
        }
    }

    fn respond(&self, req: Request) -> Response {
        if self.shutting_down.load(Ordering::Acquire) {
            if matches!(req, Request::Ping) {
                let sessions = self.sessions.lock().len() as u32;
                return Response::Pong { sessions };
            }
            self.metrics.on_rejected(RejectReason::ShuttingDown);
            return Response::Reject(RejectReason::ShuttingDown);
        }
        match req {
            Request::OneShot { traj } => {
                let tile = traj
                    .points
                    .first()
                    .map(|p| self.topology.route(p.effective_pos()))
                    .unwrap_or(0);
                match self.rpc(tile, &Request::OneShot { traj }) {
                    Some(resp) => resp,
                    None => {
                        self.metrics.on_rejected(RejectReason::ShuttingDown);
                        Response::Reject(RejectReason::ShuttingDown)
                    }
                }
            }
            Request::Open { client, lag, version } => {
                // Pin at router admission: resolve 0 to the concrete
                // active version NOW, so every shard-side open/replay/
                // restore for this session carries the same explicit pin
                // regardless of later swaps.
                let resolved = match self.registry.resolve(version) {
                    Ok(pin) => pin.manifest.version.0,
                    Err(_) => {
                        self.metrics.on_rejected(RejectReason::Invalid);
                        return Response::Reject(RejectReason::Invalid);
                    }
                };
                let mut sessions = self.sessions.lock();
                if let Some(entry) = sessions.get(&client) {
                    // Mirror single-process reopen semantics: the previous
                    // trajectory is finalized before the key is reused.
                    if let Some(tile) = entry.tile {
                        // Session ops are serialized by design: the
                        // finalize must land before the key is reused, and
                        // the journal must not move under the rpc.
                        // lint:allow(guard-across-blocking): intended session serialization
                        let _ = self.rpc(tile, &Request::Finish { client });
                    }
                }
                sessions.insert(
                    client,
                    SessionEntry {
                        tile: None,
                        lag,
                        version: resolved,
                        journal: Vec::new(),
                    },
                );
                // Shard-side Open is deferred until the first located
                // push; this ack matches the single-process Open reply.
                Response::Pushed { committed: 0 }
            }
            Request::Push { client, point } => {
                let mut sessions = self.sessions.lock();
                let Some(entry) = sessions.get_mut(&client) else {
                    return Response::Failed(WireMatchError { code: 0, a: 0, b: 0 });
                };
                let target = self.topology.route(point.effective_pos());
                if let Err(reason) = self.place(entry, client, target) {
                    return Response::Reject(reason);
                }
                for attempt in 0..2 {
                    // Push/journal/replay for one session must be atomic
                    // wrt other clients of the same key; the session lock
                    // is the serialization point (handoff ordering depends
                    // on it — DESIGN §13).
                    // lint:allow(guard-across-blocking): intended session serialization
                    match self.rpc(target, &Request::Push { client, point }) {
                        Some(Response::Pushed { committed }) => {
                            entry.journal.push(point);
                            return Response::Pushed { committed };
                        }
                        // EmptyTrajectory (code 0) from a shard that should
                        // hold the session means it restarted and lost it:
                        // rebuild from the journal and retry once.
                        Some(Response::Failed(e)) if e.code == 0 && attempt == 0 => {
                            if let Err(reason) = self.replay(entry, client, target) {
                                return Response::Reject(reason);
                            }
                        }
                        // Typed per-point verdicts (NoCandidates, ...) are
                        // forwarded and NOT journaled — the shard engine
                        // rejected and undid the layer.
                        Some(resp) => return resp,
                        None => return Response::Reject(RejectReason::ShuttingDown),
                    }
                }
                Response::Reject(RejectReason::ShuttingDown)
            }
            Request::Finish { client } => {
                let mut sessions = self.sessions.lock();
                let Some(mut entry) = sessions.remove(&client) else {
                    return Response::Failed(WireMatchError { code: 0, a: 0, b: 0 });
                };
                let Some(tile) = entry.tile else {
                    // Opened but never successfully pushed: the empty
                    // route, exactly what finalizing a fresh engine yields.
                    return Response::Route {
                        segments: Vec::new(),
                        degraded: false,
                    };
                };
                for attempt in 0..2 {
                    // Finalize is a session op; see the Push arm above.
                    // lint:allow(guard-across-blocking): intended session serialization
                    match self.rpc(tile, &Request::Finish { client }) {
                        Some(Response::Failed(e)) if e.code == 0 && attempt == 0 => {
                            if let Err(reason) = self.replay(&mut entry, client, tile) {
                                return Response::Reject(reason);
                            }
                        }
                        Some(resp) => return resp,
                        None => return Response::Reject(RejectReason::ShuttingDown),
                    }
                }
                Response::Reject(RejectReason::ShuttingDown)
            }
            Request::Ping => {
                let sessions = self.sessions.lock().len() as u32;
                Response::Pong { sessions }
            }
            // Model plane: one registry serves every shard, so acting on
            // it here swaps the whole cluster atomically — no shard can
            // admit on the old version once the promote returns.
            Request::Swap { version } => {
                let swapped = if version == 0 {
                    self.registry.rollback().map(|_| ())
                } else {
                    self.registry.promote(ModelVersion(version))
                };
                match swapped {
                    Ok(()) => {
                        self.metrics.on_model_swap();
                        self.models_response(0)
                    }
                    Err(_) => {
                        self.metrics.on_rejected(RejectReason::Invalid);
                        Response::Reject(RejectReason::Invalid)
                    }
                }
            }
            Request::Shadow { version, mirror_every } => {
                if version == 0 {
                    self.registry.clear_shadow();
                    return self.models_response(0);
                }
                match self.registry.set_shadow(ModelVersion(version), mirror_every) {
                    Ok(()) => self.models_response(0),
                    Err(_) => {
                        self.metrics.on_rejected(RejectReason::Invalid);
                        Response::Reject(RejectReason::Invalid)
                    }
                }
            }
            Request::Versions => self.models_response(0),
            Request::Refresh => {
                let label = format!("refresh-{}", self.registry.refresh_count() + 1);
                match self.registry.refresh(&label) {
                    Ok(version) => {
                        self.metrics.on_model_refresh();
                        self.models_response(version.0)
                    }
                    Err(RegistryError::EmptyStats) => self.models_response(0),
                    Err(_) => {
                        self.metrics.on_rejected(RejectReason::Invalid);
                        Response::Reject(RejectReason::Invalid)
                    }
                }
            }
            // Snapshot/Restore are the internal shard plane; on the public
            // plane they are a protocol misuse.
            Request::Snapshot { .. } | Request::Restore { .. } => {
                self.metrics.on_rejected(RejectReason::Invalid);
                Response::Reject(RejectReason::Invalid)
            }
        }
    }

    /// Same shape as the single-process server's model-plane answer.
    fn models_response(&self, refreshed: u32) -> Response {
        let (shadow, mirror_every) = match self.registry.shadow_plan() {
            Some((v, n)) => (v.0, n),
            None => (0, 0),
        };
        Response::Models {
            active: self.registry.active_version().0,
            previous: self.registry.previous_version().map_or(0, |v| v.0),
            shadow,
            mirror_every,
            refreshed,
            manifests: self.registry.manifests(),
        }
    }

    fn handle_connection(&self, mut stream: TcpStream) {
        loop {
            let req = match read_request(&mut stream) {
                Ok(r) => r,
                Err(_) => return,
            };
            let resp = self.respond(req);
            if write_response(&mut stream, &resp).is_err() {
                return;
            }
        }
    }
}

/// The cluster rollup: shard reports merged (plus the router's own
/// shed counters) and cluster-plane counters.
#[derive(Clone, Debug)]
pub struct ClusterReport {
    /// Merged per-shard report (dead generations included) plus router
    /// sheds.
    pub merged: ServeReport,
    /// Number of tiles (= shard slots).
    pub shards: usize,
    /// Shard restarts performed by the supervisor.
    pub restarts: u64,
    /// Completed snapshot/restore boundary handoffs.
    pub handoffs: u64,
    /// Journal replays (crash recoveries and handoff fallbacks).
    pub replays: u64,
}

impl ClusterReport {
    /// Requests admitted but never completed — must be 0 after a graceful
    /// drain, even across kills and restarts (the cluster acceptance
    /// criterion).
    pub fn in_flight_lost(&self) -> u64 {
        self.merged.in_flight_lost()
    }

    /// Renders the merged report plus a cluster summary line.
    pub fn render(&self) -> String {
        let mut out = self.merged.render();
        let _ = writeln!(
            out,
            "cluster:  shards {} | restarts {} | handoffs {} | replays {}",
            self.shards, self.restarts, self.handoffs, self.replays
        );
        out
    }
}

/// A running cluster (router + shards + supervisor) inside a
/// [`std::thread::scope`]. Clients connect to [`ClusterHandle::addr`] and
/// speak the ordinary wire protocol — sharding is invisible on the wire.
pub struct ClusterHandle<'scope, 'env> {
    addr: SocketAddr,
    shared: Arc<RouterShared<'scope, 'env>>,
    accept: OrderedMutex<Option<ScopedJoinHandle<'scope, ()>>>,
    monitor: OrderedMutex<Option<ScopedJoinHandle<'scope, ()>>>,
    drained: AtomicBool,
}

impl<'scope, 'env> ClusterHandle<'scope, 'env> {
    /// Starts one shard per tile of `topology` (each seeing the full
    /// network plus its tile scope), the supervisor monitor, and the
    /// router front end. `serve` is the unsharded serving context the
    /// shards derive theirs from.
    pub fn start(
        scope: &'scope Scope<'scope, 'env>,
        serve: ServeCtx<'env>,
        topology: &'env ClusterTopology,
        config: ClusterConfig,
    ) -> io::Result<Self> {
        let serves: Vec<ServeCtx<'env>> = (0..topology.num_tiles())
            .map(|t| ServeCtx {
                scope: Some(topology.scope(t)),
                ..serve
            })
            .collect();
        let supervisor =
            Supervisor::start(scope, serves, config.shard.clone(), config.max_restarts)?;
        let listener = TcpListener::bind(("127.0.0.1", 0))?;
        let addr = listener.local_addr()?;
        let shared = Arc::new(RouterShared {
            topology,
            supervisor,
            registry: serve.registry,
            // Rank-ordered (DESIGN §15): the session table is the root of
            // every router lock chain (sessions -> conns -> slots -> dead).
            sessions: OrderedMutex::new(rank::ROUTER_SESSIONS, "router.sessions", HashMap::new()),
            metrics: Arc::new(ServeMetrics::new()),
            shutting_down: AtomicBool::new(false),
            monitor_stop: AtomicBool::new(false),
            conns: (0..topology.num_tiles())
                .map(|_| OrderedMutex::new(rank::ROUTER_CONN, "router.conn", None))
                .collect(),
            peers: OrderedMutex::new(rank::SERVER_PEERS, "router.peers", Vec::new()),
            handlers: OrderedMutex::new(rank::SERVER_HANDLERS, "router.handlers", Vec::new()),
            handoffs: AtomicU64::new(0),
            replays: AtomicU64::new(0),
        });

        let monitor = {
            let shared = Arc::clone(&shared);
            let interval = config.ping_interval;
            scope.spawn(move || {
                while !shared.monitor_stop.load(Ordering::Acquire) {
                    shared.supervisor.health_check();
                    std::thread::sleep(interval);
                }
            })
        };

        let accept = {
            let shared = Arc::clone(&shared);
            scope.spawn(move || {
                for incoming in listener.incoming() {
                    if shared.shutting_down.load(Ordering::Acquire) {
                        break;
                    }
                    let Ok(stream) = incoming else { continue };
                    let _ = stream.set_nodelay(true);
                    let Ok(peer) = stream.try_clone() else { continue };
                    shared.peers.lock().push(peer);
                    let conn_shared = Arc::clone(&shared);
                    let handle = scope.spawn(move || conn_shared.handle_connection(stream));
                    shared.handlers.lock().push(handle);
                }
            })
        };

        Ok(ClusterHandle {
            addr,
            shared,
            accept: OrderedMutex::new(rank::ACCEPT_HANDLE, "router.accept", Some(accept)),
            monitor: OrderedMutex::new(rank::MONITOR_HANDLE, "router.monitor", Some(monitor)),
            drained: AtomicBool::new(false),
        })
    }

    /// The router's loopback address — the cluster's single public
    /// endpoint.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Hard-kills the shard serving `tile` (the simulated crash for
    /// recovery tests): its open sessions are dropped unfinalized and the
    /// supervisor restarts it within budget. Returns false when the shard
    /// was already down.
    pub fn kill_shard(&self, tile: usize) -> bool {
        self.shared.supervisor.kill(tile)
    }

    /// Live cluster rollup.
    pub fn report(&self) -> ClusterReport {
        let shared = &self.shared;
        let mut merged = shared.supervisor.report();
        let router = shared
            .metrics
            .snapshot(0, shared.sessions.lock().len());
        merged.merge(&router);
        ClusterReport {
            merged,
            shards: shared.topology.num_tiles(),
            restarts: shared.supervisor.restarts_total.load(Ordering::Relaxed),
            handoffs: shared.handoffs.load(Ordering::Relaxed),
            replays: shared.replays.load(Ordering::Relaxed),
        }
    }

    /// Graceful cluster drain: stop router admissions, finalize every
    /// routed session on its shard, stop the monitor, drain all shards,
    /// join the router threads, and return the final rollup.
    pub fn shutdown_and_drain(&self) -> ClusterReport {
        self.drained.store(true, Ordering::Release);
        let shared = &self.shared;
        // 1. Stop admissions at the router.
        shared.shutting_down.store(true, Ordering::Release);
        // 2. Finalize every live routed session on its shard (mirrors
        //    single-process finalize_all).
        {
            let mut sessions = shared.sessions.lock();
            for (client, entry) in sessions.drain() {
                if let Some(tile) = entry.tile {
                    // Drain finalizes under the session lock so no handler
                    // can interleave a push with the shutdown finalize of
                    // the same key.
                    // lint:allow(guard-across-blocking): intended session serialization
                    let _ = shared.rpc(tile, &Request::Finish { client });
                }
            }
        }
        // 3. Stop the monitor so it cannot resurrect draining shards.
        shared.monitor_stop.store(true, Ordering::Release);
        let monitor = self.monitor.lock().take();
        if let Some(h) = monitor {
            let _ = h.join();
        }
        // 4. Drain every shard (merges previously dead generations).
        let mut merged = shared.supervisor.drain_all();
        // 5. Unblock and join the router accept loop and handlers.
        let _ = TcpStream::connect(self.addr);
        let accept = self.accept.lock().take();
        if let Some(h) = accept {
            let _ = h.join();
        }
        for peer in shared.peers.lock().drain(..) {
            let _ = peer.shutdown(std::net::Shutdown::Both);
        }
        let handlers = {
            let mut guard = shared.handlers.lock();
            std::mem::take(&mut *guard)
        };
        for h in handlers {
            let _ = h.join();
        }
        merged.merge(&shared.metrics.snapshot(0, 0));
        ClusterReport {
            merged,
            shards: shared.topology.num_tiles(),
            restarts: shared.supervisor.restarts_total.load(Ordering::Relaxed),
            handoffs: shared.handoffs.load(Ordering::Relaxed),
            replays: shared.replays.load(Ordering::Relaxed),
        }
    }
}

impl Drop for ClusterHandle<'_, '_> {
    fn drop(&mut self) {
        if !self.drained.load(Ordering::Acquire) {
            let _ = self.shutdown_and_drain();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lhmm_network::generators::{generate_city, GeneratorConfig};

    fn city() -> RoadNetwork {
        generate_city(&GeneratorConfig::small_test(11))
    }

    #[test]
    fn routing_is_a_pure_function_of_position_with_deterministic_ties() {
        let net = city();
        let index = SpatialIndex::build(&net, 250.0);
        let topo = ClusterTopology::build(&net, &index, 2, 2, 500.0);
        let bbox = net.bbox();
        // Dense probe lattice: same position always routes identically,
        // and the route agrees with the grid's assignment.
        for i in 0..24 {
            for j in 0..24 {
                let p = Point {
                    x: bbox.min_x + (bbox.max_x - bbox.min_x) * i as f64 / 23.0,
                    y: bbox.min_y + (bbox.max_y - bbox.min_y) * j as f64 / 23.0,
                };
                let t = topo.route(p);
                assert_eq!(t, topo.route(p));
                assert_eq!(t, topo.grid().assign(p));
                assert!(t < topo.num_tiles());
            }
        }
        // A point exactly on the shared column boundary is in both closed
        // cores; the tie must break to the lower tile id.
        let mid_x = topo.grid().core(1).min_x;
        let on_boundary = Point {
            x: mid_x,
            y: (bbox.min_y + bbox.max_y) / 2.0,
        };
        let t = topo.route(on_boundary);
        assert!(topo.grid().core(t).contains(on_boundary));
        for other in 0..topo.num_tiles() {
            if topo.grid().core(other).contains(on_boundary) {
                assert!(t <= other, "tie must break to the lower tile id");
            }
        }
    }

    #[test]
    fn topology_scopes_match_the_unsharded_index_for_core_positions() {
        let net = city();
        let index = SpatialIndex::build(&net, 250.0);
        // Halo at least the streaming candidate radius used by serving.
        let topo = ClusterTopology::build(&net, &index, 2, 2, 3000.0);
        let bbox = net.bbox();
        for i in 0..12 {
            for j in 0..12 {
                let p = Point {
                    x: bbox.min_x + (bbox.max_x - bbox.min_x) * i as f64 / 11.0,
                    y: bbox.min_y + (bbox.max_y - bbox.min_y) * j as f64 / 11.0,
                };
                let tile = topo.route(p);
                let scope = topo.scope(tile);
                if !scope.core.contains(p) {
                    continue;
                }
                let got = scope.index.k_nearest(&net, p, 12, 3000.0);
                let want = index.k_nearest(&net, p, 12, 3000.0);
                assert_eq!(got, want, "subset index diverged at {p:?}");
            }
        }
    }
}
