//! Diagnostic (run with `--ignored`): per-trajectory match-length breakdown
//! for LHMM vs STM at the experiment configuration.
use lhmm_baselines::heuristic::stm;
use lhmm_cellsim::dataset::{Dataset, DatasetConfig};
use lhmm_core::lhmm::{Lhmm, LhmmConfig};
use lhmm_core::observation::ObsConfig;
use lhmm_core::transition::TransConfig;
use lhmm_core::types::{MapMatcher, MatchContext};
use lhmm_eval::metrics::evaluate_path;
use lhmm_graph::encoder::EncoderConfig;

fn full_cfg(seed: u64) -> LhmmConfig {
    LhmmConfig {
        encoder: EncoderConfig { dim: 64, epochs: 150, batch_edges: 512, seed, ..Default::default() },
        obs: ObsConfig { epochs: 250, fuse_epochs: 120, batch_points: 24, seed, ..Default::default() },
        trans: TransConfig { epochs: 150, fuse_epochs: 80, batch_trajs: 8, seed, ..Default::default() },
        k: 30, seed, ..Default::default()
    }
}

#[test]
#[ignore]
fn diag() {
    let ds = Dataset::generate(&DatasetConfig::hangzhou_like(0.02, 7));
    let mut m = Lhmm::train(&ds, full_cfg(7));
    let mut s = stm(&ds.network);
    let ctx = MatchContext { net: &ds.network, index: &ds.index, towers: &ds.towers };
    let (mut tot_ml, mut tot_tl, mut tot_sl) = (0.0, 0.0, 0.0);
    let mut shorts = 0; let mut longs = 0;
    for rec in ds.test.iter().take(40) {
        let r = m.match_trajectory(&ctx, &rec.cellular);
        let rs = s.match_trajectory(&ctx, &rec.cellular);
        let q = evaluate_path(&ds.network, &r.path, &rec.truth);
        let tl = rec.truth.length(&ds.network);
        let ml = r.path.length(&ds.network);
        tot_ml += ml; tot_tl += tl; tot_sl += rs.path.length(&ds.network);
        if ml < 0.6 * tl { shorts += 1;
            println!("SHORT pts {:2} truth {:5.0} lhmm {:5.0} P {:.2} R {:.2} CMF {:.2} contig {}",
                rec.cellular.len(), tl, ml, q.precision, q.recall, q.cmf50, r.path.is_contiguous(&ds.network));
        }
        if ml > 1.5 * tl { longs += 1;
            println!("LONG  pts {:2} truth {:5.0} lhmm {:5.0} P {:.2} R {:.2} CMF {:.2}",
                rec.cellular.len(), tl, ml, q.precision, q.recall, q.cmf50);
        }
    }
    println!("TOTAL lhmm/truth {:.2} stm/truth {:.2} shorts {shorts} longs {longs}", tot_ml/tot_tl, tot_sl/tot_tl);
}
