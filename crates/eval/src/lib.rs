//! Evaluation metrics and the experiment runner (paper §V-A3).
//!
//! * [`metrics`] — precision, recall, RMF (Eq. 22), CMF (Eq. 23) and the
//!   hitting ratio,
//! * [`histogram`] — mergeable fixed-bucket latency histograms for serving
//!   and per-stage telemetry,
//! * [`runner`] — trains/evaluates matchers over a dataset split and times
//!   inference,
//! * [`report`] — table formatting for the experiments binary,
//! * [`versioned`] — per-model-version serving telemetry lanes (hot swap
//!   and shadow A/B reporting),
//! * [`gps_truth`] — the paper's §V-A1 GPS-based label derivation.
//!
//! ```no_run
//! use lhmm_cellsim::dataset::{Dataset, DatasetConfig};
//! use lhmm_eval::runner::evaluate_matcher;
//! # use lhmm_core::lhmm::{Lhmm, LhmmConfig};
//!
//! let ds = Dataset::generate(&DatasetConfig::tiny_test(1));
//! let mut matcher = Lhmm::train(&ds, LhmmConfig::default());
//! let report = evaluate_matcher(&ds, &mut matcher, &ds.test);
//! println!("precision {:.3}, CMF50 {:.3}", report.precision, report.cmf50);
//! ```

#![forbid(unsafe_code)]
// The runner drives whole experiment sweeps; one degenerate
// trajectory must not abort a multi-hour run, so `unwrap`/`expect` are
// denied outside test builds (ci.sh lints the lib target explicitly).
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

pub mod gps_truth;
pub mod histogram;
pub mod metrics;
pub mod report;
pub mod runner;
pub mod versioned;

pub use histogram::LatencyHistogram;
pub use metrics::{evaluate_path, hitting_ratio, MatchQuality};
pub use runner::{evaluate_lhmm_batch, evaluate_matcher, EvalReport};
pub use versioned::{VersionLane, VersionTable};
