//! Fixed-bucket latency histograms for serving and stage-time telemetry.
//!
//! A [`LatencyHistogram`] is a fixed array of log-spaced buckets (base-2,
//! from 1 µs up to an overflow bucket past ~134 s) plus exact count and
//! nanosecond-sum accumulators. The representation is deliberately boring:
//!
//! * **Fixed buckets** — every histogram in the system has the *same*
//!   bucket boundaries, so any two histograms can be merged (per-worker →
//!   per-server rollups, per-batch → per-run) without resampling.
//! * **Integer state only** — counts and a saturating nanosecond sum, so
//!   [`LatencyHistogram::merge`] is exactly associative and commutative and
//!   conserves counts (pinned by proptests below). Merging in a different
//!   order can never change a reported quantile.
//! * **No allocation** — the struct is `Copy`-sized (a flat `u64` array)
//!   and safe to keep inside hot worker loops.
//!
//! Quantiles are reported as the *upper bound* of the bucket holding the
//! requested rank: an over-estimate by at most one bucket width (2× here),
//! which is the standard fixed-bucket trade-off — fine for p50/p95/p99
//! operational readouts, not for microbenchmark deltas.

/// Number of finite buckets; bucket `i` covers `[2^i µs, 2^(i+1) µs)`.
/// The last slot (`BUCKETS`) is the overflow bucket.
const BUCKETS: usize = 27;

/// A mergeable fixed-bucket histogram of durations in seconds.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct LatencyHistogram {
    /// `counts[i]` = samples in bucket `i`; `counts[BUCKETS]` = overflow.
    counts: [u64; BUCKETS + 1],
    /// Total recorded samples.
    count: u64,
    /// Saturating sum of all samples in nanoseconds (exact merge).
    sum_ns: u64,
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        LatencyHistogram {
            counts: [0; BUCKETS + 1],
            count: 0,
            sum_ns: 0,
        }
    }
}

/// Lower bound of bucket `i` in seconds: `2^i` microseconds.
#[inline]
fn bucket_lower_s(i: usize) -> f64 {
    ((1u64 << i) as f64) * 1e-6
}

impl LatencyHistogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one duration. Non-finite or negative inputs clamp to zero
    /// (they land in the first bucket) — a histogram must never reject or
    /// panic on a hostile measurement.
    pub fn record(&mut self, seconds: f64) {
        let s = if seconds.is_finite() && seconds > 0.0 {
            seconds
        } else {
            0.0
        };
        let idx = Self::bucket_of(s);
        self.counts[idx] += 1;
        self.count += 1;
        // 2^63 ns is ~292 years; saturate rather than wrap on garbage.
        let ns = (s * 1e9).min(u64::MAX as f64) as u64;
        self.sum_ns = self.sum_ns.saturating_add(ns);
    }

    /// The bucket index a duration falls in.
    #[inline]
    fn bucket_of(seconds: f64) -> usize {
        // Linear scan over 27 branch-predictable compares beats computing
        // log2 on the hot path for the short tail that dominates serving.
        for i in 0..BUCKETS {
            if seconds < bucket_lower_s(i + 1) {
                return i;
            }
        }
        BUCKETS
    }

    /// Accumulates `other` into `self`. Exactly associative and
    /// commutative; conserves counts.
    pub fn merge(&mut self, other: &LatencyHistogram) {
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
        self.count += other.count;
        self.sum_ns = self.sum_ns.saturating_add(other.sum_ns);
    }

    /// Total samples recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// True when nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Mean duration in seconds (0 when empty).
    pub fn mean_s(&self) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        self.sum_ns as f64 * 1e-9 / self.count as f64
    }

    /// Sum of all recorded durations, seconds.
    pub fn total_s(&self) -> f64 {
        self.sum_ns as f64 * 1e-9
    }

    /// Upper bound (seconds) of the bucket containing the `q`-quantile
    /// (`0.0 ..= 1.0`); an over-estimate by at most one bucket (2×).
    /// Returns 0 for an empty histogram and `f64::INFINITY` when the rank
    /// lands in the overflow bucket.
    pub fn quantile_upper_s(&self, q: f64) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let q = q.clamp(0.0, 1.0);
        // rank in 1..=count; ceil(q * count) with the empty-rank guard.
        let rank = ((q * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for i in 0..BUCKETS {
            seen += self.counts[i];
            if seen >= rank {
                return bucket_lower_s(i + 1);
            }
        }
        f64::INFINITY
    }

    /// The raw bucket counts (finite buckets then the overflow bucket);
    /// bucket `i` covers `[2^i µs, 2^(i+1) µs)`.
    pub fn bucket_counts(&self) -> &[u64] {
        &self.counts
    }

    /// One-line operational summary: count, mean and p50/p95/p99 upper
    /// bounds, with millisecond formatting.
    pub fn summary(&self) -> String {
        if self.count == 0 {
            return "n=0".to_string();
        }
        fn ms(v: f64) -> String {
            if v.is_infinite() {
                ">134s".to_string()
            } else {
                format!("{:.3}ms", v * 1e3)
            }
        }
        format!(
            "n={} mean={} p50<={} p95<={} p99<={}",
            self.count,
            ms(self.mean_s()),
            ms(self.quantile_upper_s(0.5)),
            ms(self.quantile_upper_s(0.95)),
            ms(self.quantile_upper_s(0.99)),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn records_land_in_log_spaced_buckets() {
        let mut h = LatencyHistogram::new();
        h.record(0.5e-6); // below 1µs -> bucket 0
        h.record(1.5e-6); // bucket 0 is [1µs, 2µs)
        h.record(3e-6); // bucket 1 [2µs, 4µs)
        h.record(1.0); // ~2^20µs -> bucket 19 upper bound 2^20µs? (~1.05s)
        h.record(1e9); // overflow
        assert_eq!(h.count(), 5);
        assert_eq!(h.bucket_counts()[0], 2);
        assert_eq!(h.bucket_counts()[1], 1);
        assert_eq!(h.bucket_counts()[BUCKETS], 1);
        assert!(h.quantile_upper_s(0.0) > 0.0);
        assert!(h.quantile_upper_s(1.0).is_infinite());
    }

    #[test]
    fn hostile_inputs_never_panic() {
        let mut h = LatencyHistogram::new();
        h.record(f64::NAN);
        h.record(f64::INFINITY);
        h.record(-3.0);
        assert_eq!(h.count(), 3);
        assert_eq!(h.bucket_counts()[0], 3);
        assert!(h.mean_s().is_finite());
    }

    #[test]
    fn quantile_bounds_bracket_the_samples() {
        let mut h = LatencyHistogram::new();
        for i in 1..=100 {
            h.record(i as f64 * 1e-3); // 1ms ..= 100ms
        }
        let p50 = h.quantile_upper_s(0.5);
        // True p50 is 50ms; the bound is within one 2x bucket above it.
        assert!((0.050..=0.200).contains(&p50), "p50 bound {p50}");
        let p99 = h.quantile_upper_s(0.99);
        assert!((0.099..=0.400).contains(&p99), "p99 bound {p99}");
        assert!((h.mean_s() - 0.0505).abs() < 1e-3);
    }

    #[test]
    fn summary_is_readable() {
        let mut h = LatencyHistogram::new();
        assert_eq!(h.summary(), "n=0");
        h.record(0.002);
        let s = h.summary();
        assert!(s.contains("n=1"), "{s}");
        assert!(s.contains("p99<="), "{s}");
    }

    fn arb_hist() -> impl Strategy<Value = LatencyHistogram> {
        proptest::collection::vec(0.0f64..10.0, 0..64).prop_map(|vs| {
            let mut h = LatencyHistogram::new();
            for v in vs {
                h.record(v);
            }
            h
        })
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// Merge conserves counts: every sample recorded into the parts is
        /// present in the whole, bucket by bucket.
        #[test]
        fn merge_conserves_counts(a in arb_hist(), b in arb_hist()) {
            let mut m = a.clone();
            m.merge(&b);
            prop_assert_eq!(m.count(), a.count() + b.count());
            let total: u64 = m.bucket_counts().iter().sum();
            prop_assert_eq!(total, m.count());
            for i in 0..m.bucket_counts().len() {
                prop_assert_eq!(
                    m.bucket_counts()[i],
                    a.bucket_counts()[i] + b.bucket_counts()[i]
                );
            }
        }

        /// Merge is commutative, exactly (integer state only).
        #[test]
        fn merge_is_commutative(a in arb_hist(), b in arb_hist()) {
            let mut ab = a.clone();
            ab.merge(&b);
            let mut ba = b.clone();
            ba.merge(&a);
            prop_assert_eq!(ab, ba);
        }

        /// Merge is associative, exactly.
        #[test]
        fn merge_is_associative(a in arb_hist(), b in arb_hist(), c in arb_hist()) {
            let mut ab_c = a.clone();
            ab_c.merge(&b);
            ab_c.merge(&c);
            let mut bc = b.clone();
            bc.merge(&c);
            let mut a_bc = a.clone();
            a_bc.merge(&bc);
            prop_assert_eq!(ab_c, a_bc);
        }

        /// Interleaved recording equals recording then merging.
        #[test]
        fn merge_equals_interleaved_recording(
            xs in proptest::collection::vec(0.0f64..10.0, 0..32),
            ys in proptest::collection::vec(0.0f64..10.0, 0..32),
        ) {
            let mut whole = LatencyHistogram::new();
            for &v in xs.iter().chain(&ys) {
                whole.record(v);
            }
            let mut xh = LatencyHistogram::new();
            for &v in &xs { xh.record(v); }
            let mut yh = LatencyHistogram::new();
            for &v in &ys { yh.record(v); }
            xh.merge(&yh);
            prop_assert_eq!(whole, xh);
        }
    }
}
