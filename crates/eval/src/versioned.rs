//! Per-model-version serving telemetry: one latency lane per registry
//! version.
//!
//! Shadow A/B serving and hot swaps only make sense if reports can be
//! sliced *by version*: which model served a verdict, at what latency,
//! and — for mirrored shadow traffic — how often the candidate diverged.
//! A [`VersionTable`] keeps one [`VersionLane`] per `model_version`
//! (0 = outside-a-registry, filtered out at record time) and merges
//! across workers and shards exactly like [`LatencyHistogram`] does:
//! lanes are keyed in a `BTreeMap`, so merge order can never change a
//! rendered report.

use crate::histogram::LatencyHistogram;
use std::collections::BTreeMap;

/// Telemetry for one model version.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct VersionLane {
    /// Verdicts this version served (one-shot completions plus streaming
    /// finishes pinned to it).
    pub served: u64,
    /// Shadow mirrors evaluated *on* this version (0 on the active lane).
    pub shadow_served: u64,
    /// Shadow mirrors whose verdict diverged from the active version's.
    pub shadow_divergences: u64,
    /// Service latency of this version's matches.
    pub latency: LatencyHistogram,
}

impl VersionLane {
    /// Accumulates `other` into `self`.
    pub fn merge(&mut self, other: &VersionLane) {
        self.served += other.served;
        self.shadow_served += other.shadow_served;
        self.shadow_divergences += other.shadow_divergences;
        self.latency.merge(&other.latency);
    }
}

/// A mergeable per-version telemetry table.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct VersionTable {
    /// One lane per version number, in version order.
    pub lanes: BTreeMap<u32, VersionLane>,
}

impl VersionTable {
    /// An empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// True when no version has recorded anything.
    pub fn is_empty(&self) -> bool {
        self.lanes.is_empty()
    }

    /// Records one served verdict for `version`. Version 0 (no registry)
    /// is ignored — offline paths have no lane.
    pub fn record_served(&mut self, version: u32, service_s: f64) {
        if version == 0 {
            return;
        }
        let lane = self.lanes.entry(version).or_default();
        lane.served += 1;
        lane.latency.record(service_s);
    }

    /// Records one served verdict for `version` without a latency sample
    /// (streaming finishes, whose cost was already recorded per push).
    pub fn record_finished(&mut self, version: u32) {
        if version == 0 {
            return;
        }
        self.lanes.entry(version).or_default().served += 1;
    }

    /// Records one shadow mirror evaluated on `version`.
    pub fn record_shadow(&mut self, version: u32, service_s: f64, diverged: bool) {
        if version == 0 {
            return;
        }
        let lane = self.lanes.entry(version).or_default();
        lane.shadow_served += 1;
        if diverged {
            lane.shadow_divergences += 1;
        }
        lane.latency.record(service_s);
    }

    /// Accumulates `other` into `self`, lane by lane. Exactly associative
    /// and commutative (integer state + mergeable histograms under a
    /// sorted key order).
    pub fn merge(&mut self, other: &VersionTable) {
        for (&version, lane) in &other.lanes {
            self.lanes.entry(version).or_default().merge(lane);
        }
    }

    /// Total verdicts served across every lane (shadow mirrors excluded).
    pub fn total_served(&self) -> u64 {
        self.lanes.values().map(|l| l.served).sum()
    }

    /// Renders one line per version for the serving report, e.g.
    /// `  v2: served 17 | shadow 5 (div 1) | n=22 mean=…`.
    pub fn render(&self, out: &mut String) {
        for (version, lane) in &self.lanes {
            out.push_str(&format!("  v{version}: served {}", lane.served));
            if lane.shadow_served > 0 {
                out.push_str(&format!(
                    " | shadow {} (div {})",
                    lane.shadow_served, lane.shadow_divergences
                ));
            }
            out.push_str(&format!(" | {}\n", lane.latency.summary()));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_and_render_by_version() {
        let mut t = VersionTable::new();
        assert!(t.is_empty());
        t.record_served(0, 0.001); // no registry -> no lane
        assert!(t.is_empty());
        t.record_served(1, 0.001);
        t.record_served(1, 0.002);
        t.record_served(2, 0.004);
        t.record_shadow(3, 0.003, true);
        t.record_shadow(3, 0.003, false);
        assert_eq!(t.total_served(), 3);
        assert_eq!(t.lanes[&1].served, 2);
        assert_eq!(t.lanes[&3].shadow_served, 2);
        assert_eq!(t.lanes[&3].shadow_divergences, 1);
        let mut s = String::new();
        t.render(&mut s);
        assert!(s.contains("v1: served 2"), "{s}");
        assert!(s.contains("v3: served 0 | shadow 2 (div 1)"), "{s}");
    }

    #[test]
    fn merge_is_commutative_and_conserves_counts() {
        let mut a = VersionTable::new();
        a.record_served(1, 0.001);
        a.record_served(2, 0.002);
        let mut b = VersionTable::new();
        b.record_served(2, 0.003);
        b.record_shadow(3, 0.004, true);
        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        assert_eq!(ab, ba);
        assert_eq!(ab.total_served(), 3);
        assert_eq!(ab.lanes[&2].served, 2);
        assert_eq!(ab.lanes[&2].latency.count(), 2);
    }
}
