//! Result-table formatting for the experiments binary and serving reports.

use crate::histogram::LatencyHistogram;
use crate::runner::EvalReport;
use std::fmt::Write as _;

/// Renders reports as a fixed-width text table mirroring Table II's columns.
pub fn overall_table(title: &str, reports: &[EvalReport]) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "== {title} ==");
    let _ = writeln!(
        out,
        "{:<16} {:>9} {:>8} {:>7} {:>7} {:>7} {:>12} {:>6}",
        "method", "precision", "recall", "RMF", "CMF50", "HR", "avg time (s)", "degr"
    );
    for r in reports {
        let hr = r
            .hitting_ratio
            .map(|h| format!("{h:>7.3}"))
            .unwrap_or_else(|| format!("{:>7}", "-"));
        let degr = r
            .degraded
            .map(|d| format!("{d:>6.3}"))
            .unwrap_or_else(|| format!("{:>6}", "-"));
        let _ = writeln!(
            out,
            "{:<16} {:>9.3} {:>8.3} {:>7.3} {:>7.3} {hr} {:>12.4} {degr}",
            r.method, r.precision, r.recall, r.rmf, r.cmf50, r.avg_time_s
        );
    }
    out
}

/// Renders an x-vs-metric series (figures): one row per x value.
pub fn series_table(title: &str, x_label: &str, rows: &[(f64, Vec<(String, f64)>)]) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "== {title} ==");
    if let Some((_, first)) = rows.first() {
        let mut header = format!("{x_label:>12}");
        for (name, _) in first {
            let _ = write!(header, " {name:>12}");
        }
        let _ = writeln!(out, "{header}");
    }
    for (x, cols) in rows {
        let mut line = format!("{x:>12.3}");
        for (_, v) in cols {
            let _ = write!(line, " {v:>12.4}");
        }
        let _ = writeln!(out, "{line}");
    }
    out
}

/// Renders named latency histograms as a fixed-width table — the serving
/// stack's per-stage latency report (`lhmm-serve`) and any other rollup of
/// [`LatencyHistogram`]s.
pub fn latency_table(title: &str, rows: &[(&str, &LatencyHistogram)]) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "== {title} ==");
    let _ = writeln!(
        out,
        "{:<20} {:>10} {:>12} {:>12} {:>12} {:>12}",
        "stage", "n", "mean (ms)", "p50 (ms)", "p95 (ms)", "p99 (ms)"
    );
    let cell = |v: f64| -> String {
        if v.is_infinite() {
            format!("{:>12}", ">134e3")
        } else {
            format!("{:>12.3}", v * 1e3)
        }
    };
    for (name, h) in rows {
        let _ = writeln!(
            out,
            "{:<20} {:>10} {:>12.3} {} {} {}",
            name,
            h.count(),
            h.mean_s() * 1e3,
            cell(h.quantile_upper_s(0.5)),
            cell(h.quantile_upper_s(0.95)),
            cell(h.quantile_upper_s(0.99)),
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_report() -> EvalReport {
        EvalReport {
            method: "LHMM".into(),
            precision: 0.516,
            recall: 0.613,
            rmf: 0.670,
            cmf50: 0.126,
            hitting_ratio: Some(0.953),
            avg_time_s: 0.032,
            degraded: Some(0.01),
            n: 100,
        }
    }

    #[test]
    fn overall_table_contains_all_columns() {
        let t = overall_table("hangzhou-like", &[sample_report()]);
        assert!(t.contains("LHMM"));
        assert!(t.contains("0.516"));
        assert!(t.contains("0.953"));
        assert!(t.contains("0.0320"));
    }

    #[test]
    fn missing_hr_renders_dash() {
        let mut r = sample_report();
        r.hitting_ratio = None;
        let t = overall_table("x", &[r]);
        assert!(t.contains(" - "));
    }

    #[test]
    fn latency_table_renders_quantiles() {
        let mut h = LatencyHistogram::new();
        for _ in 0..10 {
            h.record(0.004);
        }
        let t = latency_table("serving", &[("queue_wait", &h), ("service", &h)]);
        assert!(t.contains("queue_wait"));
        assert!(t.contains("service"));
        assert!(t.contains("p99 (ms)"));
        assert!(t.contains("10"));
    }

    #[test]
    fn series_table_renders_rows() {
        let rows = vec![
            (10.0, vec![("LHMM".to_string(), 0.14), ("STM".to_string(), 0.2)]),
            (20.0, vec![("LHMM".to_string(), 0.13), ("STM".to_string(), 0.21)]),
        ];
        let t = series_table("fig8", "k", &rows);
        assert!(t.contains("LHMM"));
        assert!(t.contains("10.000"));
        assert!(t.contains("0.2100"));
    }
}
