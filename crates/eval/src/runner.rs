//! Matcher evaluation over a dataset split.

use crate::metrics::{evaluate_path, hitting_ratio, MatchQuality};
use lhmm_cellsim::dataset::Dataset;
use lhmm_cellsim::traj::TrajectoryRecord;
use lhmm_core::batch::{BatchConfig, BatchMatcher, BatchStats};
use lhmm_core::lhmm::LhmmModel;
use lhmm_core::types::{MapMatcher, MatchContext, MatchResult};
use std::time::Instant;

/// Aggregated evaluation of one matcher on one split (macro-averaged over
/// trajectories, as in Table II).
#[derive(Clone, Debug)]
pub struct EvalReport {
    /// Matcher display name.
    pub method: String,
    /// Mean precision.
    pub precision: f64,
    /// Mean recall.
    pub recall: f64,
    /// Mean Route Mismatch Fraction.
    pub rmf: f64,
    /// Mean Corridor Mismatch Fraction at 50 m.
    pub cmf50: f64,
    /// Mean hitting ratio, when the matcher exposes candidate sets.
    pub hitting_ratio: Option<f64>,
    /// Mean wall-clock inference time per trajectory, seconds.
    pub avg_time_s: f64,
    /// Fraction of trajectories whose match was degraded (dropped points,
    /// glued gaps, clamped scores, or failures mapped to empty results).
    /// `None` when the matching path does not expose degradation telemetry
    /// (serial [`MapMatcher`] evaluation).
    pub degraded: Option<f64>,
    /// Number of evaluated trajectories.
    pub n: usize,
}

/// Aggregates per-trajectory results (serial or batch) into a report.
/// `results[i]` must correspond to `records[i]`; `time_total` is the
/// matching wall-clock for the whole set.
fn aggregate_results(
    ds: &Dataset,
    method: &str,
    records: &[TrajectoryRecord],
    results: &[MatchResult],
    time_total: f64,
) -> EvalReport {
    assert_eq!(records.len(), results.len());
    let mut sum = MatchQuality {
        precision: 0.0,
        recall: 0.0,
        rmf: 0.0,
        cmf50: 0.0,
    };
    let mut hr_sum = 0.0;
    let mut hr_n = 0usize;
    for (rec, result) in records.iter().zip(results) {
        let q = evaluate_path(&ds.network, &result.path, &rec.truth);
        sum.precision += q.precision;
        sum.recall += q.recall;
        sum.rmf += q.rmf;
        sum.cmf50 += q.cmf50;
        if let Some(sets) = &result.candidate_sets {
            hr_sum += hitting_ratio(sets, &rec.truth);
            hr_n += 1;
        }
    }
    let n = records.len();
    let nf = n as f64;
    EvalReport {
        method: method.to_string(),
        precision: sum.precision / nf,
        recall: sum.recall / nf,
        rmf: sum.rmf / nf,
        cmf50: sum.cmf50 / nf,
        hitting_ratio: (hr_n > 0).then(|| hr_sum / hr_n as f64),
        avg_time_s: time_total / nf,
        degraded: None,
        n,
    }
}

/// Runs `matcher` over `records` and aggregates quality and timing.
pub fn evaluate_matcher(
    ds: &Dataset,
    matcher: &mut dyn MapMatcher,
    records: &[TrajectoryRecord],
) -> EvalReport {
    assert!(!records.is_empty(), "no records to evaluate");
    let ctx = MatchContext {
        net: &ds.network,
        index: &ds.index,
        towers: &ds.towers,
    };
    let mut results = Vec::with_capacity(records.len());
    let mut time_total = 0.0f64;
    for rec in records {
        let start = Instant::now();
        results.push(matcher.match_trajectory(&ctx, &rec.cellular));
        time_total += start.elapsed().as_secs_f64();
    }
    aggregate_results(ds, matcher.name(), records, &results, time_total)
}

/// Like [`evaluate_matcher`] but matches the whole split through the
/// parallel [`BatchMatcher`]. Quality metrics are identical to the serial
/// path (batching is bit-equivalent, see [`lhmm_core::batch`]);
/// `avg_time_s` reflects parallel wall-clock per trajectory, and the
/// returned [`BatchStats`] carries per-shard cache and Viterbi telemetry.
pub fn evaluate_lhmm_batch(
    ds: &Dataset,
    model: &LhmmModel,
    records: &[TrajectoryRecord],
    config: BatchConfig,
) -> (EvalReport, BatchStats) {
    assert!(!records.is_empty(), "no records to evaluate");
    let ctx = MatchContext {
        net: &ds.network,
        index: &ds.index,
        towers: &ds.towers,
    };
    let trajs: Vec<_> = records.iter().map(|r| r.cellular.clone()).collect();
    let matcher = BatchMatcher::new(model, config);
    let start = Instant::now();
    let (results, stats) = matcher.match_batch(&ctx, &trajs);
    let time_total = start.elapsed().as_secs_f64();
    let mut report = aggregate_results(ds, model.name(), records, &results, time_total);
    let degraded: usize = stats.per_worker.iter().map(|w| w.degraded).sum();
    report.degraded = Some(degraded as f64 / records.len() as f64);
    (report, stats)
}

/// Per-trajectory qualities (for stratified analyses like Fig. 7a).
pub fn per_trajectory_quality(
    ds: &Dataset,
    matcher: &mut dyn MapMatcher,
    records: &[TrajectoryRecord],
) -> Vec<MatchQuality> {
    let ctx = MatchContext {
        net: &ds.network,
        index: &ds.index,
        towers: &ds.towers,
    };
    records
        .iter()
        .map(|rec| {
            let result = matcher.match_trajectory(&ctx, &rec.cellular);
            evaluate_path(&ds.network, &result.path, &rec.truth)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use lhmm_cellsim::dataset::DatasetConfig;
    use lhmm_cellsim::traj::CellularTrajectory;
    use lhmm_core::types::MatchResult;
    use lhmm_network::path::Path;

    /// A matcher that returns the ground truth for testing the runner
    /// (cheats by looking the trajectory up in the dataset).
    struct Oracle {
        answers: Vec<(usize, Path)>,
        cursor: usize,
    }

    impl MapMatcher for Oracle {
        fn name(&self) -> &str {
            "oracle"
        }
        fn match_trajectory(
            &mut self,
            _ctx: &MatchContext<'_>,
            _traj: &CellularTrajectory,
        ) -> MatchResult {
            let path = self.answers[self.cursor].1.clone();
            self.cursor += 1;
            MatchResult {
                path,
                candidate_sets: None,
            }
        }
    }

    #[test]
    fn oracle_scores_perfectly() {
        let ds = Dataset::generate(&DatasetConfig::tiny_test(71));
        let mut oracle = Oracle {
            answers: ds
                .test
                .iter()
                .enumerate()
                .map(|(i, r)| (i, r.truth.clone()))
                .collect(),
            cursor: 0,
        };
        let report = evaluate_matcher(&ds, &mut oracle, &ds.test);
        assert_eq!(report.method, "oracle");
        assert_eq!(report.n, ds.test.len());
        assert!((report.precision - 1.0).abs() < 1e-9);
        assert!((report.recall - 1.0).abs() < 1e-9);
        assert!(report.rmf.abs() < 1e-9);
        assert!(report.cmf50 < 1e-9);
        assert!(report.hitting_ratio.is_none());
        assert!(report.avg_time_s >= 0.0);
    }

    /// A matcher that returns nothing.
    struct Mute;
    impl MapMatcher for Mute {
        fn name(&self) -> &str {
            "mute"
        }
        fn match_trajectory(
            &mut self,
            _ctx: &MatchContext<'_>,
            _traj: &CellularTrajectory,
        ) -> MatchResult {
            MatchResult::empty()
        }
    }

    #[test]
    fn mute_matcher_scores_zero() {
        let ds = Dataset::generate(&DatasetConfig::tiny_test(72));
        let report = evaluate_matcher(&ds, &mut Mute, &ds.test);
        assert_eq!(report.precision, 0.0);
        assert_eq!(report.recall, 0.0);
        assert!((report.rmf - 1.0).abs() < 1e-9);
        assert!((report.cmf50 - 1.0).abs() < 1e-9);
    }

    #[test]
    fn batch_evaluation_matches_serial_quality() {
        use lhmm_core::lhmm::{Lhmm, LhmmConfig};
        let ds = Dataset::generate(&DatasetConfig::tiny_test(74));
        let mut cfg = LhmmConfig::fast_test(74);
        cfg.use_learned_obs = false; // cheap training; engine path identical
        cfg.use_learned_trans = false;
        let mut serial = Lhmm::train(&ds, cfg);
        let serial_report = evaluate_matcher(&ds, &mut serial, &ds.test);
        let (batch_report, stats) =
            evaluate_lhmm_batch(&ds, serial.model(), &ds.test, BatchConfig::with_workers(2));
        assert_eq!(batch_report.n, serial_report.n);
        assert_eq!(batch_report.method, serial_report.method);
        // Batching is bit-equivalent, so quality metrics match exactly.
        assert_eq!(batch_report.precision, serial_report.precision);
        assert_eq!(batch_report.recall, serial_report.recall);
        assert_eq!(batch_report.rmf, serial_report.rmf);
        assert_eq!(batch_report.cmf50, serial_report.cmf50);
        assert_eq!(batch_report.hitting_ratio, serial_report.hitting_ratio);
        // Batch evaluation exposes a degradation rate; serial (trait-object)
        // evaluation has no stats channel.
        assert!(serial_report.degraded.is_none());
        let degr = batch_report.degraded.expect("batch reports degradation");
        assert!((0.0..=1.0).contains(&degr), "rate {degr}");
        assert_eq!(
            stats.per_worker.iter().map(|w| w.matched).sum::<usize>(),
            ds.test.len()
        );
    }

    #[test]
    fn per_trajectory_qualities_align() {
        let ds = Dataset::generate(&DatasetConfig::tiny_test(73));
        let qs = per_trajectory_quality(&ds, &mut Mute, &ds.test[..4]);
        assert_eq!(qs.len(), 4);
        assert!(qs.iter().all(|q| q.cmf50 == 1.0));
    }
}
