//! Matching-quality metrics.

use lhmm_geo::polyline;
use lhmm_network::graph::{RoadNetwork, SegmentId};
use lhmm_network::path::Path;
use std::collections::HashSet;

/// Quality of one matched path against its ground truth.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct MatchQuality {
    /// Correctly-matched length / matched length.
    pub precision: f64,
    /// Correctly-matched length / ground-truth length.
    pub recall: f64,
    /// Route Mismatch Fraction (Eq. 22): (missing + redundant) / truth
    /// length. Lower is better; can exceed 1.
    pub rmf: f64,
    /// Corridor Mismatch Fraction at 50 m (Eq. 23): uncovered truth length
    /// / truth length. Lower is better, in `[0, 1]`.
    pub cmf50: f64,
}

/// Corridor half-width for CMF50, meters.
pub const CMF_RADIUS: f64 = 50.0;
/// Ground-truth sampling resolution for corridor coverage, meters.
const CMF_STEP: f64 = 20.0;

/// Evaluates a matched path against the ground truth.
///
/// Correctness is measured at road-segment level on *directed* segments
/// (a match on the opposite carriageway counts as a mismatch, which is
/// exactly the parallel-road failure CMF is designed to forgive).
pub fn evaluate_path(net: &RoadNetwork, matched: &Path, truth: &Path) -> MatchQuality {
    assert!(!truth.is_empty(), "ground truth may not be empty");
    let truth_len = dedup_length(net, &truth.segments);
    let matched_len = dedup_length(net, &matched.segments);

    let truth_set: HashSet<SegmentId> = truth.segment_set();
    let matched_set: HashSet<SegmentId> = matched.segment_set();
    // Sum in segment-id order: HashSet iteration order varies per instance,
    // and float addition is order-sensitive, so hash-order summation makes
    // the last ulp nondeterministic across runs.
    let mut correct: Vec<SegmentId> = matched_set.intersection(&truth_set).copied().collect();
    correct.sort_unstable();
    let correct_len: f64 = correct.iter().map(|&s| net.segment(s).length).sum();

    let precision = if matched_len > 0.0 {
        correct_len / matched_len
    } else {
        0.0
    };
    let recall = correct_len / truth_len;
    let missing = truth_len - correct_len;
    let redundant = matched_len - correct_len;
    let rmf = (missing + redundant) / truth_len;

    let truth_poly = truth.polyline(net);
    let cmf50 = if matched.is_empty() {
        1.0
    } else {
        let matched_poly = matched.polyline(net);
        let covered =
            polyline::covered_length(&truth_poly, &matched_poly, CMF_RADIUS, CMF_STEP);
        (1.0 - covered / truth_len.max(1e-9)).clamp(0.0, 1.0)
    };

    MatchQuality {
        precision,
        recall,
        rmf,
        cmf50,
    }
}

/// Total length counting each distinct segment once (repeated traversals
/// should not inflate precision's denominator).
fn dedup_length(net: &RoadNetwork, segs: &[SegmentId]) -> f64 {
    let mut distinct: Vec<SegmentId> = segs.to_vec();
    distinct.sort_unstable();
    distinct.dedup();
    distinct.iter().map(|&s| net.segment(s).length).sum()
}

/// Discrete Fréchet distance between the matched and ground-truth path
/// geometries, in meters — a supplementary worst-deviation diagnostic
/// (CMF measures coverage; Fréchet measures the single worst excursion
/// under monotone traversal). `f64::INFINITY` for an empty match.
pub fn frechet_deviation(net: &RoadNetwork, matched: &Path, truth: &Path) -> f64 {
    let a = matched.polyline(net);
    let b = truth.polyline(net);
    // Resample so vertex density does not bias the discrete distance.
    let a = polyline::resample(&a, 25.0);
    let b = polyline::resample(&b, 25.0);
    lhmm_geo::frechet::discrete_frechet(&a, &b)
}

/// Hitting ratio (paper §V-A3): the fraction of trajectory points whose
/// candidate road set intersects the ground-truth path. Only meaningful for
/// HMM-style matchers.
pub fn hitting_ratio(candidate_sets: &[Vec<SegmentId>], truth: &Path) -> f64 {
    if candidate_sets.is_empty() {
        return 0.0;
    }
    let truth_set = truth.segment_set();
    let hits = candidate_sets
        .iter()
        .filter(|set| set.iter().any(|s| truth_set.contains(s)))
        .count();
    hits as f64 / candidate_sets.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use lhmm_geo::Point;
    use lhmm_network::builder::NetworkBuilder;
    use lhmm_network::graph::RoadClass;

    /// A straight 4-segment west-east road plus a parallel road 30 m north.
    fn parallel_net() -> (RoadNetwork, Vec<SegmentId>, Vec<SegmentId>) {
        let mut b = NetworkBuilder::new();
        let mut south = Vec::new();
        let mut north = Vec::new();
        let mut s_nodes = Vec::new();
        let mut n_nodes = Vec::new();
        for x in 0..5 {
            s_nodes.push(b.add_node(Point::new(x as f64 * 100.0, 0.0)));
            n_nodes.push(b.add_node(Point::new(x as f64 * 100.0, 30.0)));
        }
        for x in 0..4 {
            south.push(
                b.add_segment(s_nodes[x], s_nodes[x + 1], RoadClass::Local)
                    .unwrap(),
            );
            north.push(
                b.add_segment(n_nodes[x], n_nodes[x + 1], RoadClass::Local)
                    .unwrap(),
            );
        }
        (b.build().unwrap(), south, north)
    }

    #[test]
    fn perfect_match_is_perfect() {
        let (net, south, _) = parallel_net();
        let p = Path::new(south);
        let q = evaluate_path(&net, &p, &p);
        assert_eq!(q.precision, 1.0);
        assert_eq!(q.recall, 1.0);
        assert_eq!(q.rmf, 0.0);
        assert!(q.cmf50 < 1e-9);
    }

    #[test]
    fn empty_match_is_total_mismatch() {
        let (net, south, _) = parallel_net();
        let truth = Path::new(south);
        let q = evaluate_path(&net, &Path::empty(), &truth);
        assert_eq!(q.precision, 0.0);
        assert_eq!(q.recall, 0.0);
        assert_eq!(q.rmf, 1.0);
        assert_eq!(q.cmf50, 1.0);
    }

    #[test]
    fn parallel_road_fails_rmf_but_passes_cmf50() {
        // Matching the parallel road 30 m away: zero segment overlap, but
        // the 50 m corridor fully covers the truth (Fig. 6's motivation).
        let (net, south, north) = parallel_net();
        let truth = Path::new(south);
        let matched = Path::new(north);
        let q = evaluate_path(&net, &matched, &truth);
        assert_eq!(q.precision, 0.0);
        assert_eq!(q.recall, 0.0);
        assert_eq!(q.rmf, 2.0); // all missing + all redundant
        assert!(q.cmf50 < 1e-9, "cmf50 = {}", q.cmf50);
    }

    #[test]
    fn half_match_metrics() {
        let (net, south, _) = parallel_net();
        let truth = Path::new(south.clone());
        let matched = Path::new(south[..2].to_vec());
        let q = evaluate_path(&net, &matched, &truth);
        assert_eq!(q.precision, 1.0);
        assert_eq!(q.recall, 0.5);
        assert_eq!(q.rmf, 0.5); // half missing, none redundant
        // The 50 m corridor around the matched half also covers a sliver of
        // truth past its endpoint, so CMF50 is slightly below 0.5.
        assert!((0.3..0.5).contains(&q.cmf50), "cmf50 {}", q.cmf50);
    }

    #[test]
    fn repeated_segments_do_not_inflate_precision() {
        let (net, south, _) = parallel_net();
        let truth = Path::new(south.clone());
        let mut segs = south.clone();
        segs.extend_from_slice(&south); // doubled traversal
        let q = evaluate_path(&net, &Path::new(segs), &truth);
        assert_eq!(q.precision, 1.0);
        assert_eq!(q.recall, 1.0);
    }

    #[test]
    fn rmf_counts_redundant_detours() {
        let (net, south, north) = parallel_net();
        let truth = Path::new(south.clone());
        // Matched path includes all truth plus a redundant parallel segment.
        let mut segs = south;
        segs.push(north[0]);
        let q = evaluate_path(&net, &Path::new(segs), &truth);
        assert_eq!(q.recall, 1.0);
        assert!(q.precision < 1.0);
        assert!((q.rmf - 0.25).abs() < 1e-9);
    }

    #[test]
    fn frechet_deviation_tracks_parallel_offset() {
        let (net, south, north) = parallel_net();
        let truth = Path::new(south.clone());
        assert!(frechet_deviation(&net, &truth, &truth) < 1e-9);
        let d = frechet_deviation(&net, &Path::new(north), &truth);
        assert!((d - 30.0).abs() < 1.0, "frechet {d}");
        assert_eq!(
            frechet_deviation(&net, &Path::empty(), &truth),
            f64::INFINITY
        );
    }

    #[test]
    fn hitting_ratio_counts_covered_points() {
        let (_, south, north) = parallel_net();
        let truth = Path::new(south.clone());
        let sets = vec![
            vec![south[0], north[0]], // hit
            vec![north[1]],           // miss
            vec![south[3]],           // hit
        ];
        assert!((hitting_ratio(&sets, &truth) - 2.0 / 3.0).abs() < 1e-9);
        assert_eq!(hitting_ratio(&[], &truth), 0.0);
        // Empty candidate set at a point counts as a miss.
        let with_empty = vec![vec![south[0]], vec![]];
        assert!((hitting_ratio(&with_empty, &truth) - 0.5).abs() < 1e-9);
    }
}
