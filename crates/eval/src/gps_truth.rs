//! Ground-truth derivation from GPS samples (paper §V-A1).
//!
//! The paper labels each cellular trajectory's ground-truth path by running
//! a classical HMM matcher \[8\] over the *GPS* sample sequence of the same
//! trip. The simulator knows the exact traveled path, so this module exists
//! for two purposes:
//!
//! 1. fidelity to the paper's pipeline — experiments can be run against
//!    GPS-derived labels instead of oracle labels, and
//! 2. validating the labeling assumption — tests confirm the GPS-derived
//!    path agrees with the exact path almost everywhere, which is what
//!    makes it usable as ground truth.

use lhmm_cellsim::dataset::Dataset;
use lhmm_cellsim::traj::GpsPoint;
use lhmm_core::candidates::distance_layers;
use lhmm_core::classic::{ClassicModel, ClassicObservation, ClassicTransition};
use lhmm_core::viterbi::{EngineConfig, HmmEngine};
use lhmm_geo::Point;
use lhmm_network::path::Path;

/// A GPS-tuned classic HMM matcher used only for label derivation.
pub struct GpsLabeler {
    engine: HmmEngine,
    /// Candidates per GPS point.
    pub k: usize,
    /// Candidate radius, meters (GPS noise is tens of meters).
    pub radius: f64,
}

impl GpsLabeler {
    /// Creates a labeler for `ds`'s network.
    pub fn new(ds: &Dataset) -> Self {
        GpsLabeler {
            engine: HmmEngine::new(
                &ds.network,
                EngineConfig {
                    // No shortcuts: GPS candidate sets rarely miss the path,
                    // and labels should stay conservative.
                    shortcuts: 0,
                    max_route_factor: 3.0,
                    route_slack: 500.0,
                    ..EngineConfig::default()
                },
            ),
            k: 6,
            radius: 200.0,
        }
    }

    /// Derives the traveled path from a GPS sample sequence.
    pub fn derive(&mut self, ds: &Dataset, gps: &[GpsPoint]) -> Path {
        if gps.is_empty() {
            return Path::empty();
        }
        let positions: Vec<Point> = gps.iter().map(|g| g.pos).collect();
        let mut model = ClassicModel::new(
            ClassicObservation::gps(),
            ClassicTransition::gps(),
            positions.clone(),
        );
        let (layers, kept) = distance_layers(
            &ds.network,
            &ds.index,
            &positions,
            self.k,
            self.radius,
            &mut model,
        );
        if layers.is_empty() {
            return Path::empty();
        }
        // Re-index the model positions to kept points.
        let kept_positions: Vec<Point> = positions
            .iter()
            .zip(&kept)
            .filter(|&(_, &k)| k)
            .map(|(&p, _)| p)
            .collect();
        let pts: Vec<(Point, f64)> = gps
            .iter()
            .zip(&kept)
            .filter(|&(_, &k)| k)
            .map(|(g, _)| (g.pos, g.t))
            .collect();
        model.positions = kept_positions;
        let out = self.engine.find_path(&ds.network, &pts, layers, &mut model);
        out.path
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::evaluate_path;
    use lhmm_cellsim::dataset::DatasetConfig;

    #[test]
    fn gps_derived_labels_agree_with_exact_truth() {
        let ds = Dataset::generate(&DatasetConfig::tiny_test(301));
        let mut labeler = GpsLabeler::new(&ds);
        let mut recalls = Vec::new();
        let mut cmfs = Vec::new();
        for rec in ds.test.iter().take(10) {
            let derived = labeler.derive(&ds, &rec.gps);
            assert!(!derived.is_empty());
            let q = evaluate_path(&ds.network, &derived, &rec.truth);
            recalls.push(q.recall);
            cmfs.push(q.cmf50);
        }
        let mean_recall: f64 = recalls.iter().sum::<f64>() / recalls.len() as f64;
        let mean_cmf: f64 = cmfs.iter().sum::<f64>() / cmfs.len() as f64;
        // GPS-derived labels must be near-exact — this is what justifies the
        // paper's use of them as ground truth.
        assert!(mean_recall > 0.8, "mean recall {mean_recall}");
        assert!(mean_cmf < 0.15, "mean CMF50 {mean_cmf}");
    }

    #[test]
    fn empty_gps_yields_empty_path() {
        let ds = Dataset::generate(&DatasetConfig::tiny_test(302));
        let mut labeler = GpsLabeler::new(&ds);
        assert!(labeler.derive(&ds, &[]).is_empty());
    }
}
