//! Cluster serving throughput (trajectories/sec) and tail latency versus
//! shard count.
//!
//! One iteration = streaming every held-out trajectory through a running
//! cluster over real loopback TCP (open → push each point → finish), with
//! shard counts 1, 2, and 4 (1×1, 2×1, and 2×2 tile grids). After each
//! configuration the merged cluster report's p50/p99 stream-push latency
//! is printed — the per-observation tail a sharded deployment actually
//! serves. Shard count 1 is the single-tile baseline: the router and
//! supervisor are still in the path, so the sweep isolates what sharding
//! itself buys (and costs).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use lhmm_cellsim::dataset::{Dataset, DatasetConfig};
use lhmm_core::lhmm::{Lhmm, LhmmConfig};
use lhmm_core::registry::ModelRegistry;
use lhmm_core::types::MatchContext;
use lhmm_serve::{ClusterConfig, ClusterHandle, ClusterTopology, ServeClient, ServeCtx};
use std::thread;

fn bench_cluster(c: &mut Criterion) {
    let ds = Dataset::generate(&DatasetConfig::tiny_test(109));
    let ctx = MatchContext {
        net: &ds.network,
        index: &ds.index,
        towers: &ds.towers,
    };
    let lhmm = Lhmm::train(&ds, LhmmConfig::fast_test(109));
    let registry = ModelRegistry::new(lhmm.model().clone(), "bench");
    let trajs: Vec<_> = ds.test.iter().map(|r| r.cellular.clone()).collect();

    let mut group = c.benchmark_group("serve_cluster");
    group.sample_size(10);
    group.throughput(Throughput::Elements(trajs.len() as u64));
    for (cols, rows) in [(1usize, 1usize), (2, 1), (2, 2)] {
        let shards = cols * rows;
        let topology = ClusterTopology::build(&ds.network, &ds.index, cols, rows, 3000.0);
        thread::scope(|s| {
            let cluster = ClusterHandle::start(
                s,
                ServeCtx {
                    ctx,
                    registry: &registry,
                    scope: None,
                },
                &topology,
                ClusterConfig::default(),
            )
            .expect("bind cluster");
            let addr = cluster.addr();

            group.bench_with_input(BenchmarkId::new("shards", shards), &shards, |b, _| {
                b.iter(|| {
                    // Four concurrent streaming clients striding the split:
                    // enough overlap to exercise per-shard parallelism
                    // without swamping a laptop-sized runner.
                    thread::scope(|cs| {
                        for c in 0..4usize {
                            let trajs = &trajs;
                            cs.spawn(move || {
                                let mut client =
                                    ServeClient::connect(addr).expect("connect");
                                for (i, traj) in
                                    trajs.iter().enumerate().skip(c).step_by(4)
                                {
                                    let session = (c * 100_000 + i) as u64;
                                    client.open(session, 4).expect("open");
                                    for p in &traj.points {
                                        // Typed per-point verdicts are part
                                        // of normal service.
                                        let _ = client.push(session, p);
                                    }
                                    let _ = client.finish(session).expect("finish");
                                }
                            });
                        }
                    });
                });
            });

            let report = cluster.shutdown_and_drain();
            let pushes = &report.merged.stream_push;
            eprintln!(
                "shards {shards}: stream-push p50 {:.3} ms | p99 {:.3} ms | handoffs {} | pushes {}",
                pushes.quantile_upper_s(0.50) * 1e3,
                pushes.quantile_upper_s(0.99) * 1e3,
                report.handoffs,
                report.merged.stream_pushes,
            );
            assert_eq!(
                report.in_flight_lost(),
                0,
                "bench drain lost admitted work"
            );
        });
    }
    group.finish();
}

criterion_group!(benches, bench_cluster);
criterion_main!(benches);
