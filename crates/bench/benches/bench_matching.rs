//! End-to-end matching throughput per method (the Avg Time column of
//! Table II). One iteration = matching one held-out trajectory.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use lhmm_baselines::heuristic::{snapnet, stm, thmm};
use lhmm_baselines::ivmm::Ivmm;
use lhmm_baselines::seq2seq::{Seq2SeqConfig, Seq2SeqMatcher};
use lhmm_cellsim::dataset::{Dataset, DatasetConfig};
use lhmm_core::lhmm::{Lhmm, LhmmConfig};
use lhmm_core::types::{MapMatcher, MatchContext};
use lhmm_network::backend::SpBackend;

fn bench_matching(c: &mut Criterion) {
    let ds = Dataset::generate(&DatasetConfig::tiny_test(101));
    let ctx = MatchContext {
        net: &ds.network,
        index: &ds.index,
        towers: &ds.towers,
    };

    let mut group = c.benchmark_group("match_one_trajectory");
    group.sample_size(20);

    let mut lhmm = Lhmm::train(&ds, LhmmConfig::fast_test(101));
    // Same trained weights behind the contraction-hierarchy backend: the
    // Dijkstra/CH delta is pure shortest-path speed, not model variance.
    let mut lhmm_ch = {
        let mut cfg = LhmmConfig::fast_test(101);
        cfg.sp_backend = SpBackend::Ch;
        Lhmm::load_weights(&ds, cfg, &lhmm.save_weights()).expect("reload trained weights")
    };
    let mut dmm = Seq2SeqMatcher::train(&ds, Seq2SeqConfig::dmm(101).fast_test());
    let mut matchers: Vec<(&str, &mut dyn MapMatcher)> = Vec::new();
    let mut stm_m = stm(&ds.network);
    let mut thmm_m = thmm(&ds.network);
    let mut snet_m = snapnet(&ds.network);
    let mut ivmm_m = Ivmm::new(&ds.network);
    matchers.push(("LHMM", &mut lhmm));
    matchers.push(("LHMM-CH", &mut lhmm_ch));
    matchers.push(("STM", &mut stm_m));
    matchers.push(("THMM", &mut thmm_m));
    matchers.push(("SNet", &mut snet_m));
    matchers.push(("IVMM", &mut ivmm_m));
    matchers.push(("DMM", &mut dmm));

    for (name, matcher) in matchers {
        group.bench_with_input(BenchmarkId::from_parameter(name), &(), |b, _| {
            let mut i = 0usize;
            b.iter(|| {
                let rec = &ds.test[i % ds.test.len()];
                i += 1;
                matcher.match_trajectory(&ctx, &rec.cellular)
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_matching);
criterion_main!(benches);
