//! Batch matching throughput (trajectories/sec) versus worker count.
//!
//! One iteration = matching the full held-out split through the parallel
//! [`BatchMatcher`] at 1, 2, 4 and 8 workers; the throughput line converts
//! the timing into trajectories/sec. Speedup over the 1-worker row shows
//! the scaling of the sharded-cache design — on a single-core host all
//! rows collapse to roughly the same number, so run this on a multi-core
//! machine to see the scaling.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use lhmm_cellsim::dataset::{Dataset, DatasetConfig};
use lhmm_core::batch::{BatchConfig, BatchMatcher};
use lhmm_core::lhmm::{Lhmm, LhmmConfig};
use lhmm_core::types::MatchContext;

fn bench_batch(c: &mut Criterion) {
    let ds = Dataset::generate(&DatasetConfig::tiny_test(104));
    let ctx = MatchContext {
        net: &ds.network,
        index: &ds.index,
        towers: &ds.towers,
    };
    let lhmm = Lhmm::train(&ds, LhmmConfig::fast_test(104));
    let trajs: Vec<_> = ds.test.iter().map(|r| r.cellular.clone()).collect();

    let mut group = c.benchmark_group("batch_matching");
    group.sample_size(10);
    group.throughput(Throughput::Elements(trajs.len() as u64));
    for workers in [1usize, 2, 4, 8] {
        let matcher = BatchMatcher::new(lhmm.model(), BatchConfig::with_workers(workers));
        group.bench_with_input(
            BenchmarkId::new("workers", workers),
            &matcher,
            |b, matcher| {
                b.iter(|| matcher.match_batch(&ctx, &trajs));
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_batch);
criterion_main!(benches);
