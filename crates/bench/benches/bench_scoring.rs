//! Scalar-reference vs vectorized scoring throughput for the learned
//! `P_O` and `P_T` models, swept over the candidate-set size `k`.
//!
//! One iteration = the full per-trajectory scoring workload: build the
//! observation scorer (attention contexts for every point), score every
//! point's `k`-candidate batch, then build the transition scorer (key
//! projections) and evaluate a set of route windows. All modes are
//! bit-identical by construction (see `tests/scoring_equivalence.rs` and
//! `tests/kernel_corpus.rs`); this bench quantifies what the fast path
//! buys — batched kernels, scratch reuse and per-trajectory context
//! sharing vs the allocating per-row reference — and, within the fast
//! path, what each dispatched SIMD kernel adds: the sweep runs the fused
//! path once per kernel this machine supports (`fused_scalar`,
//! `fused_sse2`, `fused_avx2`, `fused_neon`) via `kernel::force_scope`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use lhmm_cellsim::dataset::{Dataset, DatasetConfig};
use lhmm_cellsim::tower::TowerId;
use lhmm_core::lhmm::{LhmmConfig, LhmmModel};
use lhmm_core::transition::TrajTransScorer;
use lhmm_geo::Point;
use lhmm_network::graph::SegmentId;
use lhmm_neural::kernel::{self, Kernel};
use lhmm_neural::Scratch;

fn bench_scoring(c: &mut Criterion) {
    let ds = Dataset::generate(&DatasetConfig::tiny_test(107));
    // Weight quality is irrelevant for throughput; shrink training time.
    let mut cfg = LhmmConfig::fast_test(107);
    cfg.obs.epochs = 20;
    cfg.obs.fuse_epochs = 10;
    cfg.trans.epochs = 20;
    cfg.trans.fuse_epochs = 10;
    let model = LhmmModel::train(&ds, cfg);
    let obs = model.observation_learner().expect("learned P_O");
    let trans = model.transition_learner().expect("learned P_T");
    let emb = model.embeddings();

    let rec = ds
        .test
        .iter()
        .max_by_key(|r| r.cellular.len())
        .expect("non-empty test split");
    let towers = rec.cellular.towers();
    let routes: Vec<&[SegmentId]> = rec.truth.segments.windows(5).step_by(5).take(12).collect();

    let mut group = c.benchmark_group("scoring_one_trajectory");
    for k in [4usize, 8, 16, 32] {
        let batches: Vec<(Point, TowerId, Vec<SegmentId>)> = rec
            .cellular
            .points
            .iter()
            .map(|p| {
                let pos = p.effective_pos();
                let segs: Vec<SegmentId> = ds
                    .index
                    .k_nearest(&ds.network, pos, k, 3_000.0)
                    .into_iter()
                    .map(|(s, _)| s)
                    .collect();
                (pos, p.tower, segs)
            })
            .filter(|(_, _, segs)| !segs.is_empty())
            .collect();

        // `scalar` is the PR 2 per-row reference path; `fused_<kernel>` is
        // the batched fast path once per SIMD kernel this machine supports.
        let mut modes: Vec<(String, bool, Option<Kernel>)> = vec![("scalar".into(), true, None)];
        for kern in kernel::supported_kernels() {
            modes.push((format!("fused_{}", kern.name()), false, Some(kern)));
        }
        for (mode, scalar, kern) in &modes {
            group.bench_with_input(
                BenchmarkId::new(mode.as_str(), k),
                scalar,
                |b, &scalar| {
                    let _kernel_guard = kern.and_then(kernel::force_scope);
                    // The arena round-trips through `finish` so iterations
                    // after the first run with warm buffers — the batch
                    // matcher's steady state.
                    let mut obs_scratch = Scratch::new();
                    let mut trans_scratch = Scratch::new();
                    let mut out = Vec::new();
                    b.iter(|| {
                        let mut po = obs.traj_scorer(
                            emb,
                            &towers,
                            std::mem::take(&mut obs_scratch),
                            scalar,
                        );
                        let mut acc = 0.0f32;
                        for (i, (pos, tower, segs)) in batches.iter().enumerate() {
                            po.score_into(
                                &ds.network,
                                model.graph(),
                                *pos,
                                *tower,
                                i,
                                segs,
                                &mut out,
                            );
                            acc += out.iter().sum::<f32>();
                        }
                        (obs_scratch, _) = po.finish();
                        let mut pt = TrajTransScorer::with_scratch(
                            trans,
                            emb,
                            &towers,
                            std::mem::take(&mut trans_scratch),
                            scalar,
                        );
                        for r in &routes {
                            acc += pt.transition_prob(&ds.network, 650.0, 40.0, 880.0, r);
                        }
                        (trans_scratch, _) = pt.finish();
                        acc
                    });
                },
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_scoring);
criterion_main!(benches);
