//! Shortest-path substrate throughput: single queries, one-to-many layers,
//! and the memoized cache (the paper's precomputation table, §V-A2).

use criterion::{criterion_group, criterion_main, Criterion};
use lhmm_network::generators::{generate_city, GeneratorConfig};
use lhmm_network::graph::NodeId;
use lhmm_network::shortest_path::DijkstraEngine;
use lhmm_network::sp_cache::SpCache;

fn bench_shortest_path(c: &mut Criterion) {
    let net = generate_city(&GeneratorConfig {
        rows: 40,
        cols: 40,
        ..GeneratorConfig::small_test(5)
    });
    let n = net.num_nodes() as u32;

    c.bench_function("dijkstra_single_3km", |b| {
        let mut eng = DijkstraEngine::new(&net);
        let mut i = 0u32;
        b.iter(|| {
            i = i.wrapping_add(7919);
            eng.node_to_node(&net, NodeId(i % n), NodeId((i * 31) % n), 3_000.0)
        });
    });

    c.bench_function("dijkstra_one_to_30", |b| {
        let mut eng = DijkstraEngine::new(&net);
        let targets: Vec<NodeId> = (0..30).map(|k| NodeId((k * 53) % n)).collect();
        let mut i = 0u32;
        b.iter(|| {
            i = i.wrapping_add(101);
            eng.node_to_nodes(&net, NodeId(i % n), &targets, 5_000.0)
        });
    });

    c.bench_function("sp_cache_repeat_hits", |b| {
        let mut cache = SpCache::new(&net, 100_000);
        // Warm a small working set, then measure hit-path latency.
        for k in 0..50u32 {
            cache.route(&net, NodeId(k % n), NodeId((k * 13) % n), 1e9);
        }
        let mut i = 0u32;
        b.iter(|| {
            i = (i + 1) % 50;
            cache.route(&net, NodeId(i % n), NodeId((i * 13) % n), 1e9)
        });
    });
}

criterion_group!(benches, bench_shortest_path);
criterion_main!(benches);
