//! Shortest-path substrate throughput: single queries, one-to-many layers,
//! the memoized cache (the paper's precomputation table, §V-A2), and the
//! contraction-hierarchy backend against the Dijkstra oracle.
//!
//! The backend sweep runs every query shape at each city size under both
//! `SpBackend`s with matching ids (`sp_single_unbounded/{dijkstra,ch}/…`),
//! so the CH speedup is read directly off paired lines. Preprocessing is
//! *not* hidden inside query timings: `ch_build/{size}` reports the
//! one-time contraction cost separately, mirroring how `MatchStats`
//! separates `sp_preprocess_time_s` from query-stage timing.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use lhmm_network::backend::{SpBackend, SpHandle};
use lhmm_network::generators::{generate_city, GeneratorConfig};
use lhmm_network::graph::{NodeId, RoadNetwork};
use lhmm_network::shortest_path::UNREACHABLE;
use lhmm_network::sp_cache::SpCache;

const BACKENDS: [(SpBackend, &str); 2] =
    [(SpBackend::Dijkstra, "dijkstra"), (SpBackend::Ch, "ch")];

fn city(rows: usize, cols: usize) -> RoadNetwork {
    generate_city(&GeneratorConfig {
        rows,
        cols,
        ..GeneratorConfig::small_test(5)
    })
}

fn bench_shortest_path(c: &mut Criterion) {
    let cities: Vec<(&str, RoadNetwork)> = vec![
        ("city_40x40", city(40, 40)),
        ("city_80x80", city(80, 80)),
        ("city_160x160", city(160, 160)),
    ];

    // Long-range point queries: no usable bound, so plain Dijkstra must
    // settle a large frontier while CH answers from the hierarchy. This is
    // the shape the ≥10× target is measured on.
    let mut group = c.benchmark_group("sp_single_unbounded");
    for (size, net) in &cities {
        let n = net.num_nodes() as u32;
        for (backend, name) in BACKENDS {
            let handle = SpHandle::build(net, backend);
            group.bench_function(BenchmarkId::new(name, size), |b| {
                let mut eng = handle.engine(net);
                let mut i = 0u32;
                b.iter(|| {
                    i = i.wrapping_add(7919);
                    eng.node_to_node(net, NodeId(i % n), NodeId((i * 31) % n), UNREACHABLE)
                });
            });
        }
    }
    group.finish();

    // Matching's actual query shape: one source against a candidate layer,
    // with the engine's distance bound.
    let mut group = c.benchmark_group("sp_one_to_30_bounded");
    for (size, net) in &cities {
        let n = net.num_nodes() as u32;
        let targets: Vec<NodeId> = (0..30).map(|k| NodeId((k * 53) % n)).collect();
        for (backend, name) in BACKENDS {
            let handle = SpHandle::build(net, backend);
            group.bench_function(BenchmarkId::new(name, size), |b| {
                let mut eng = handle.engine(net);
                let mut i = 0u32;
                b.iter(|| {
                    i = i.wrapping_add(101);
                    eng.node_to_nodes(net, NodeId(i % n), &targets, 5_000.0)
                });
            });
        }
    }
    group.finish();

    // One-time preprocessing cost, reported on its own. The largest city
    // is skipped here only to keep CI wall-clock sane; its build cost is
    // visible in the warmup of the query groups above.
    let mut group = c.benchmark_group("ch_build");
    group.sample_size(10);
    for (size, net) in cities.iter().take(2) {
        group.bench_function(BenchmarkId::from_parameter(size), |b| {
            b.iter(|| SpHandle::build(net, SpBackend::Ch));
        });
    }
    group.finish();

    let net = &cities[0].1;
    let n = net.num_nodes() as u32;
    c.bench_function("sp_cache_repeat_hits", |b| {
        let mut cache = SpCache::new(net, 100_000);
        // Warm a small working set, then measure hit-path latency.
        for k in 0..50u32 {
            cache.route(net, NodeId(k % n), NodeId((k * 13) % n), 1e9);
        }
        let mut i = 0u32;
        b.iter(|| {
            i = (i + 1) % 50;
            cache.route(net, NodeId(i % n), NodeId((i * 13) % n), 1e9)
        });
    });
}

criterion_group!(benches, bench_shortest_path);
criterion_main!(benches);
