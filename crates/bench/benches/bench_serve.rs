//! Micro-batch scheduler throughput (requests/sec) versus `max_batch`.
//!
//! One iteration = pushing the full held-out split through a running
//! [`MicroBatcher`] (no sockets — scheduler + worker pool only) and
//! collecting every reply. Sweeping `max_batch` ∈ {1, 4, 16} isolates the
//! batch-formation trade-off: 1 dispatches each request alone (pure
//! per-dispatch overhead), 16 amortizes dispatch and keeps the worker's
//! cache and scratch arenas hot across a whole batch.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use lhmm_cellsim::dataset::{Dataset, DatasetConfig};
use lhmm_core::lhmm::{Lhmm, LhmmConfig};
use lhmm_core::types::MatchContext;
use lhmm_serve::{BatchPolicy, MicroBatcher, ServeCtx, ServeMetrics};
use std::sync::Arc;
use std::thread;
use std::time::Duration;

fn bench_serve(c: &mut Criterion) {
    let ds = Dataset::generate(&DatasetConfig::tiny_test(108));
    let ctx = MatchContext {
        net: &ds.network,
        index: &ds.index,
        towers: &ds.towers,
    };
    let lhmm = Lhmm::train(&ds, LhmmConfig::fast_test(108));
    let trajs: Vec<_> = ds.test.iter().map(|r| r.cellular.clone()).collect();

    let mut group = c.benchmark_group("serve_scheduler");
    group.sample_size(10);
    group.throughput(Throughput::Elements(trajs.len() as u64));
    for max_batch in [1usize, 4, 16] {
        thread::scope(|s| {
            let batcher = MicroBatcher::start(
                s,
                ServeCtx {
                    ctx,
                    model: lhmm.model(),
                    scope: None,
                },
                BatchPolicy {
                    max_batch,
                    // Short deadline: the bench floods the queue, so
                    // batches fill by size, not by waiting.
                    max_wait: Duration::from_micros(500),
                    workers: 2,
                    ..Default::default()
                },
                Arc::new(ServeMetrics::new()),
            );
            group.bench_with_input(
                BenchmarkId::new("max_batch", max_batch),
                &batcher,
                |b, batcher| {
                    b.iter(|| {
                        let receivers: Vec<_> = trajs
                            .iter()
                            .map(|t| batcher.submit(t.clone()).expect("admitted"))
                            .collect();
                        for rx in receivers {
                            let _ = rx.recv().expect("reply");
                        }
                    });
                },
            );
            batcher.drain();
        });
    }
    group.finish();
}

criterion_group!(benches, bench_serve);
criterion_main!(benches);
