//! Micro-batch scheduler throughput (requests/sec) versus `max_batch`,
//! plus the hot-swap overhead sweep.
//!
//! One iteration = pushing the full held-out split through a running
//! [`MicroBatcher`] (no sockets — scheduler + worker pool only) and
//! collecting every reply. Sweeping `max_batch` ∈ {1, 4, 16} isolates the
//! batch-formation trade-off: 1 dispatches each request alone (pure
//! per-dispatch overhead), 16 amortizes dispatch and keeps the worker's
//! cache and scratch arenas hot across a whole batch.
//!
//! The `serve_swap` group measures what model hot swaps cost the serving
//! path: the same corpus is pushed through while the active version is
//! promoted back and forth every `swap_every` submissions (0 = never —
//! the baseline). Swapping costs a mutex flip at admission plus a lazily
//! built per-version engine on each worker, so the sweep exposes both the
//! steady-state overhead and the first-swap warmup, approximating swap
//! cadences from none through several per minute at this corpus size.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use lhmm_cellsim::dataset::{Dataset, DatasetConfig};
use lhmm_core::lhmm::{Lhmm, LhmmConfig};
use lhmm_core::registry::{ModelRegistry, ModelVersion};
use lhmm_core::types::MatchContext;
use lhmm_serve::{BatchPolicy, MicroBatcher, ServeCtx, ServeMetrics};
use std::sync::Arc;
use std::thread;
use std::time::Duration;

fn bench_serve(c: &mut Criterion) {
    let ds = Dataset::generate(&DatasetConfig::tiny_test(108));
    let ctx = MatchContext {
        net: &ds.network,
        index: &ds.index,
        towers: &ds.towers,
    };
    let lhmm = Lhmm::train(&ds, LhmmConfig::fast_test(108));
    let registry = ModelRegistry::new(lhmm.model().clone(), "bench");
    let trajs: Vec<_> = ds.test.iter().map(|r| r.cellular.clone()).collect();

    let mut group = c.benchmark_group("serve_scheduler");
    group.sample_size(10);
    group.throughput(Throughput::Elements(trajs.len() as u64));
    for max_batch in [1usize, 4, 16] {
        thread::scope(|s| {
            let batcher = MicroBatcher::start(
                s,
                ServeCtx {
                    ctx,
                    registry: &registry,
                    scope: None,
                },
                BatchPolicy {
                    max_batch,
                    // Short deadline: the bench floods the queue, so
                    // batches fill by size, not by waiting.
                    max_wait: Duration::from_micros(500),
                    workers: 2,
                    ..Default::default()
                },
                Arc::new(ServeMetrics::new()),
            );
            group.bench_with_input(
                BenchmarkId::new("max_batch", max_batch),
                &batcher,
                |b, batcher| {
                    b.iter(|| {
                        let receivers: Vec<_> = trajs
                            .iter()
                            .map(|t| batcher.submit(t.clone()).expect("admitted"))
                            .collect();
                        for rx in receivers {
                            let _ = rx.recv().expect("reply");
                        }
                    });
                },
            );
            batcher.drain();
        });
    }
    group.finish();
}

fn bench_swap(c: &mut Criterion) {
    let ds = Dataset::generate(&DatasetConfig::tiny_test(108));
    let ctx = MatchContext {
        net: &ds.network,
        index: &ds.index,
        towers: &ds.towers,
    };
    let lhmm = Lhmm::train(&ds, LhmmConfig::fast_test(108));
    let trajs: Vec<_> = ds.test.iter().map(|r| r.cellular.clone()).collect();

    let mut group = c.benchmark_group("serve_swap");
    group.sample_size(10);
    group.throughput(Throughput::Elements(trajs.len() as u64));
    // swap_every = 0 never swaps (baseline); smaller values swap more
    // often. Both versions carry identical weights, so any time delta is
    // pure swap machinery, not model cost.
    for swap_every in [0usize, 16, 4] {
        let registry = ModelRegistry::new(lhmm.model().clone(), "v1");
        let v2 = registry.register(lhmm.model().clone(), "v2", Some(ModelVersion(1)));
        thread::scope(|s| {
            let batcher = MicroBatcher::start(
                s,
                ServeCtx {
                    ctx,
                    registry: &registry,
                    scope: None,
                },
                BatchPolicy {
                    max_batch: 4,
                    max_wait: Duration::from_micros(500),
                    workers: 2,
                    ..Default::default()
                },
                Arc::new(ServeMetrics::new()),
            );
            group.bench_with_input(
                BenchmarkId::new("swap_every", swap_every),
                &batcher,
                |b, batcher| {
                    b.iter(|| {
                        let mut receivers = Vec::with_capacity(trajs.len());
                        for (i, t) in trajs.iter().enumerate() {
                            if swap_every != 0 && i % swap_every == 0 {
                                let next = if (i / swap_every) % 2 == 0 {
                                    v2
                                } else {
                                    ModelVersion(1)
                                };
                                registry.promote(next).expect("registered version");
                            }
                            receivers.push(batcher.submit(t.clone()).expect("admitted"));
                        }
                        for rx in receivers {
                            let _ = rx.recv().expect("reply");
                        }
                    });
                },
            );
            batcher.drain();
        });
    }
    group.finish();
}

criterion_group!(benches, bench_serve, bench_swap);
criterion_main!(benches);
