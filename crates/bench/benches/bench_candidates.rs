//! Candidate preparation: distance top-k vs learned P_O top-k (the design
//! choice that lets LHMM run with a smaller k, §V-B "running efficiency").

use criterion::{criterion_group, criterion_main, Criterion};
use lhmm_cellsim::dataset::{Dataset, DatasetConfig};
use lhmm_core::candidates::nearest_segments;
use lhmm_core::lhmm::{Lhmm, LhmmConfig};
use lhmm_core::types::{MapMatcher, MatchContext};

fn bench_candidates(c: &mut Criterion) {
    let ds = Dataset::generate(&DatasetConfig::tiny_test(105));
    let rec = &ds.test[0];
    let pos = rec.cellular.points[0].effective_pos();

    c.bench_function("distance_top30", |b| {
        b.iter(|| nearest_segments(&ds.network, &ds.index, pos, 30, 3_000.0));
    });

    // Learned preparation is exercised through a full match (it includes
    // the attention context and batched MLP scoring).
    let mut lhmm = Lhmm::train(&ds, LhmmConfig::fast_test(105));
    let ctx = MatchContext {
        net: &ds.network,
        index: &ds.index,
        towers: &ds.towers,
    };
    let mut group = c.benchmark_group("learned_vs_k");
    group.sample_size(20);
    for k in [10usize, 30] {
        group.bench_function(format!("lhmm_match_k{k}"), |b| {
            lhmm.set_k(k);
            b.iter(|| lhmm.match_trajectory(&ctx, &rec.cellular));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_candidates);
criterion_main!(benches);
