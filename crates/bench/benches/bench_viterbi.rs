//! HMM path-finding engine throughput, with and without the shortcut pass
//! (ablation for the Algorithm 2 design choice called out in DESIGN.md).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use lhmm_cellsim::dataset::{Dataset, DatasetConfig};
use lhmm_core::candidates::distance_layers;
use lhmm_core::classic::{ClassicModel, ClassicObservation, ClassicTransition};
use lhmm_core::viterbi::{EngineConfig, HmmEngine};
use lhmm_geo::Point;

fn bench_viterbi(c: &mut Criterion) {
    let ds = Dataset::generate(&DatasetConfig::tiny_test(104));
    let rec = ds
        .test
        .iter()
        .max_by_key(|r| r.cellular.len())
        .expect("non-empty test split");
    let positions: Vec<Point> = rec.cellular.effective_positions();
    let pts: Vec<(Point, f64)> = rec
        .cellular
        .points
        .iter()
        .map(|p| (p.effective_pos(), p.t))
        .collect();

    let mut group = c.benchmark_group("viterbi_one_trajectory");
    for shortcuts in [0usize, 1, 2] {
        group.bench_with_input(
            BenchmarkId::new("shortcuts", shortcuts),
            &shortcuts,
            |b, &sc| {
                let mut engine = HmmEngine::new(
                    &ds.network,
                    EngineConfig {
                        shortcuts: sc,
                        ..Default::default()
                    },
                );
                b.iter(|| {
                    let mut model = ClassicModel::new(
                        ClassicObservation::cellular(),
                        ClassicTransition::cellular(),
                        positions.clone(),
                    );
                    let (layers, _) = distance_layers(
                        &ds.network,
                        &ds.index,
                        &positions,
                        20,
                        3_000.0,
                        &mut model,
                    );
                    engine.find_path(&ds.network, &pts, layers, &mut model)
                });
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_viterbi);
criterion_main!(benches);
