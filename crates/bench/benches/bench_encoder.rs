//! Het-Graph Encoder training and inference throughput.

use criterion::{criterion_group, criterion_main, Criterion};
use lhmm_cellsim::dataset::{Dataset, DatasetConfig};
use lhmm_graph::encoder::{train_encoder, EncoderConfig, EncoderKind};
use lhmm_graph::relgraph::MultiRelGraph;

fn bench_encoder(c: &mut Criterion) {
    let ds = Dataset::generate(&DatasetConfig::tiny_test(103));
    let graph = MultiRelGraph::build(&ds.network, ds.towers.len(), &ds.train);

    let mut group = c.benchmark_group("encoder_train_10_epochs");
    group.sample_size(10);
    for kind in [
        EncoderKind::Heterogeneous,
        EncoderKind::Homogeneous,
        EncoderKind::MlpEmbedding,
    ] {
        group.bench_function(format!("{kind:?}"), |b| {
            b.iter(|| {
                train_encoder(
                    &graph,
                    &EncoderConfig {
                        dim: 32,
                        epochs: 10,
                        batch_edges: 256,
                        kind,
                        ..Default::default()
                    },
                )
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_encoder);
criterion_main!(benches);
