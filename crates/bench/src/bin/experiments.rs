//! Regenerates every table and figure of the LHMM paper's evaluation
//! (Section V) on the synthetic datasets.
//!
//! ```text
//! experiments <command> [--scale S] [--seed N] [--out DIR]
//!
//! commands:
//!   table1   dataset characteristics (Table I)
//!   table2   overall performance, 11 methods × 2 datasets (Table II)
//!   table3   ablations (Table III)
//!   fig6     RMF vs CMF metric illustration (Fig. 6)
//!   fig7a    accuracy vs distance to city center (Fig. 7a)
//!   fig7b    accuracy vs sampling rate (Fig. 7b)
//!   fig8     accuracy vs candidate number k (Fig. 8)
//!   fig9     accuracy vs shortcut number K (Fig. 9)
//!   fig10a   accuracy vs trajectories per tower (Fig. 10a)
//!   fig10b   accuracy vs total data scale (Fig. 10b)
//!   fig11    challenging case study, GeoJSON export (Fig. 11)
//!   all      everything above
//! ```
//!
//! The default `--scale 0.035` generates two city-scale datasets quickly;
//! results are printed and appended to `<out>/results.txt`.

use lhmm_baselines::heuristic::{clsters, ifm, mcm, snapnet, stm, stm_s, thmm};
use lhmm_baselines::ivmm::Ivmm;
use lhmm_baselines::seq2seq::{Seq2SeqConfig, Seq2SeqMatcher};
use lhmm_cellsim::dataset::{Dataset, DatasetConfig};
use lhmm_cellsim::sampling::thin_to_rate;
use lhmm_cellsim::traj::TrajectoryRecord;
use lhmm_core::lhmm::{Lhmm, LhmmConfig};
use lhmm_core::observation::ObsConfig;
use lhmm_core::transition::TransConfig;
use lhmm_core::types::{MapMatcher, MatchContext};
use lhmm_eval::report::{overall_table, series_table};
use lhmm_eval::runner::{evaluate_matcher, EvalReport};
use lhmm_graph::encoder::{EncoderConfig, EncoderKind};
use std::collections::HashMap;
use std::fmt::Write as _;
use std::io::Write as _;

struct Args {
    command: String,
    scale: f64,
    seed: u64,
    out: String,
}

fn parse_args() -> Args {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut args = Args {
        command: argv.first().cloned().unwrap_or_else(|| "all".to_string()),
        scale: 0.035,
        seed: 7,
        out: "experiment_results".to_string(),
    };
    let mut i = 1;
    while i < argv.len() {
        match argv[i].as_str() {
            "--scale" if i + 1 < argv.len() => {
                args.scale = argv[i + 1].parse().expect("numeric --scale");
                i += 2;
            }
            "--seed" if i + 1 < argv.len() => {
                args.seed = argv[i + 1].parse().expect("numeric --seed");
                i += 2;
            }
            "--out" if i + 1 < argv.len() => {
                args.out = argv[i + 1].clone();
                i += 2;
            }
            _ => i += 1,
        }
    }
    args
}

fn main() {
    let args = parse_args();
    std::fs::create_dir_all(&args.out).expect("create output dir");
    let mut sink = Sink::new(&args.out);

    match args.command.as_str() {
        "table1" => table1(&args, &mut sink),
        "table2" => table2(&args, &mut sink),
        "table3" => table3(&args, &mut sink),
        "fig6" => fig6(&mut sink),
        "fig7a" => fig7a(&args, &mut sink),
        "fig7b" => fig7b(&args, &mut sink),
        "fig8" => fig8(&args, &mut sink),
        "fig9" => fig9(&args, &mut sink),
        "fig10a" => fig10a(&args, &mut sink),
        "fig10b" => fig10b(&args, &mut sink),
        "fig11" => fig11(&args, &mut sink),
        "all" => {
            table1(&args, &mut sink);
            table2(&args, &mut sink);
            table3(&args, &mut sink);
            fig6(&mut sink);
            fig7a(&args, &mut sink);
            fig7b(&args, &mut sink);
            fig8(&args, &mut sink);
            fig9(&args, &mut sink);
            fig10a(&args, &mut sink);
            fig10b(&args, &mut sink);
            fig11(&args, &mut sink);
        }
        other => {
            eprintln!("unknown command: {other}");
            std::process::exit(2);
        }
    }
}

/// Tee to stdout and `<out>/results.txt`.
struct Sink {
    file: std::fs::File,
}

impl Sink {
    fn new(dir: &str) -> Self {
        let path = format!("{dir}/results.txt");
        let file = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(path)
            .expect("open results file");
        Sink { file }
    }
    fn emit(&mut self, text: &str) {
        println!("{text}");
        let _ = writeln!(self.file, "{text}");
    }
}

// ---------------------------------------------------------------------
// Shared setup
// ---------------------------------------------------------------------

fn hangzhou(args: &Args) -> Dataset {
    eprintln!("[gen] hangzhou-like scale={} ...", args.scale);
    Dataset::generate(&DatasetConfig::hangzhou_like(args.scale, args.seed))
}

fn xiamen(args: &Args) -> Dataset {
    eprintln!("[gen] xiamen-like scale={} ...", args.scale);
    Dataset::generate(&DatasetConfig::xiamen_like(args.scale, args.seed))
}

/// The experiment-grade LHMM configuration.
fn lhmm_config(seed: u64) -> LhmmConfig {
    LhmmConfig {
        encoder: EncoderConfig {
            dim: 64,
            epochs: 150,
            batch_edges: 512,
            seed,
            ..Default::default()
        },
        obs: ObsConfig {
            epochs: 250,
            fuse_epochs: 120,
            batch_points: 24,
            seed,
            ..Default::default()
        },
        trans: TransConfig {
            epochs: 150,
            fuse_epochs: 80,
            batch_trajs: 8,
            seed,
            ..Default::default()
        },
        k: 30,
        seed,
        ..Default::default()
    }
}

fn train_lhmm(ds: &Dataset, cfg: LhmmConfig) -> Lhmm {
    eprintln!("[train] LHMM variant on {} ...", ds.name);
    Lhmm::train(ds, cfg)
}

fn train_seq2seq(ds: &Dataset, cfg: Seq2SeqConfig) -> Seq2SeqMatcher {
    eprintln!("[train] {} on {} ...", cfg.name, ds.name);
    Seq2SeqMatcher::train(ds, cfg)
}

// ---------------------------------------------------------------------
// Table I
// ---------------------------------------------------------------------

fn table1(args: &Args, sink: &mut Sink) {
    for ds in [hangzhou(args), xiamen(args)] {
        let stats = lhmm_cellsim::stats::compute(&ds);
        sink.emit("== Table I: dataset characteristics ==");
        sink.emit(&stats.to_string());
        sink.emit("");
    }
}

// ---------------------------------------------------------------------
// Table II
// ---------------------------------------------------------------------

fn table2(args: &Args, sink: &mut Sink) {
    for ds in [hangzhou(args), xiamen(args)] {
        let mut reports: Vec<EvalReport> = Vec::new();

        // HMM-era baselines.
        let mut heuristics: Vec<Box<dyn MapMatcher>> = vec![
            Box::new(stm(&ds.network)),
            Box::new(Ivmm::new(&ds.network)),
            Box::new(ifm(&ds.network)),
            Box::new(mcm(&ds.network)),
            Box::new(clsters(&ds.network)),
            Box::new(snapnet(&ds.network)),
            Box::new(thmm(&ds.network)),
        ];
        for m in &mut heuristics {
            eprintln!("[eval] {} on {} ...", m.name(), ds.name);
            reports.push(evaluate_matcher(&ds, m.as_mut(), &ds.test));
        }

        // Seq2seq methods.
        for cfg in [
            Seq2SeqConfig::deepmm(args.seed),
            Seq2SeqConfig::transformer_mm(args.seed),
            Seq2SeqConfig::dmm(args.seed),
        ] {
            let mut m = train_seq2seq(&ds, cfg);
            eprintln!("[eval] {} on {} ...", m.name(), ds.name);
            reports.push(evaluate_matcher(&ds, &mut m, &ds.test));
        }

        // LHMM.
        let mut lhmm = train_lhmm(&ds, lhmm_config(args.seed));
        eprintln!("[eval] LHMM on {} ...", ds.name);
        reports.push(evaluate_matcher(&ds, &mut lhmm, &ds.test));

        sink.emit(&overall_table(
            &format!("Table II: overall performance — {}", ds.name),
            &reports,
        ));
    }
}

// ---------------------------------------------------------------------
// Table III
// ---------------------------------------------------------------------

fn table3(args: &Args, sink: &mut Sink) {
    for ds in [hangzhou(args), xiamen(args)] {
        let mut reports: Vec<EvalReport> = Vec::new();
        let base = lhmm_config(args.seed);

        let variants: Vec<LhmmConfig> = vec![
            base.clone(),
            {
                let mut c = base.clone();
                c.encoder.kind = EncoderKind::MlpEmbedding;
                c
            },
            {
                let mut c = base.clone();
                c.encoder.kind = EncoderKind::Homogeneous;
                c
            },
            {
                let mut c = base.clone();
                c.use_learned_obs = false;
                c
            },
            {
                let mut c = base.clone();
                c.use_learned_trans = false;
                c
            },
            {
                let mut c = base.clone();
                c.shortcut_k = 0;
                c
            },
        ];
        for cfg in variants {
            let mut m = train_lhmm(&ds, cfg);
            eprintln!("[eval] {} on {} ...", m.name(), ds.name);
            reports.push(evaluate_matcher(&ds, &mut m, &ds.test));
        }
        let mut s = stm(&ds.network);
        reports.push(evaluate_matcher(&ds, &mut s, &ds.test));
        let mut ss = stm_s(&ds.network);
        reports.push(evaluate_matcher(&ds, &mut ss, &ds.test));

        sink.emit(&overall_table(
            &format!("Table III: ablations — {}", ds.name),
            &reports,
        ));
    }
}

// ---------------------------------------------------------------------
// Fig. 6 — metric illustration
// ---------------------------------------------------------------------

fn fig6(sink: &mut Sink) {
    use lhmm_eval::metrics::evaluate_path;
    use lhmm_geo::Point;
    use lhmm_network::builder::NetworkBuilder;
    use lhmm_network::graph::RoadClass;
    use lhmm_network::path::Path;

    // The Fig. 6 scenario: a ground-truth road and a parallel side road
    // 30 m away (urban viaduct vs its underlying road).
    let mut b = NetworkBuilder::new();
    let mut s_nodes = Vec::new();
    let mut n_nodes = Vec::new();
    for x in 0..5 {
        s_nodes.push(b.add_node(Point::new(x as f64 * 100.0, 0.0)));
        n_nodes.push(b.add_node(Point::new(x as f64 * 100.0, 30.0)));
    }
    let mut south = Vec::new();
    let mut north = Vec::new();
    for x in 0..4 {
        south.push(
            b.add_segment(s_nodes[x], s_nodes[x + 1], RoadClass::Local)
                .unwrap(),
        );
        north.push(
            b.add_segment(n_nodes[x], n_nodes[x + 1], RoadClass::Local)
                .unwrap(),
        );
    }
    let net = b.build().unwrap();
    let truth = Path::new(south);
    let parallel = Path::new(north);

    let q = evaluate_path(&net, &parallel, &truth);
    sink.emit("== Fig. 6: RMF vs CMF illustration ==");
    sink.emit("matching the parallel side road 30 m from the ground truth:");
    sink.emit(&format!(
        "  RMF   = {:.3}  (strict segment-level: all missing + all redundant)",
        q.rmf
    ));
    sink.emit(&format!(
        "  CMF50 = {:.3}  (50 m corridor forgives the parallel-road error)",
        q.cmf50
    ));
    sink.emit("");
}

// ---------------------------------------------------------------------
// Fig. 7a — area robustness
// ---------------------------------------------------------------------

fn fig7a(args: &Args, sink: &mut Sink) {
    let ds = hangzhou(args);
    let mut lhmm = train_lhmm(&ds, lhmm_config(args.seed));
    let mut dmm = train_seq2seq(&ds, Seq2SeqConfig::dmm(args.seed));
    let mut stm_m = stm(&ds.network);

    // Stratify the test split by trip-centroid distance to the city center.
    let center = ds.network.bbox().center();
    let max_r = ds.network.bbox().width().max(ds.network.bbox().height()) * 0.5;
    let mut buckets: Vec<Vec<&TrajectoryRecord>> = vec![Vec::new(); 5];
    for rec in &ds.test {
        let centroid = lhmm_geo::point::centroid(
            &rec.cellular.points.iter().map(|p| p.pos).collect::<Vec<_>>(),
        )
        .expect("non-empty trajectory");
        let level = ((centroid.distance(center) / max_r) * 5.0).min(4.0) as usize;
        buckets[level].push(rec);
    }

    let mut rows = Vec::new();
    for (level, bucket) in buckets.iter().enumerate() {
        if bucket.is_empty() {
            continue;
        }
        let records: Vec<TrajectoryRecord> = bucket.iter().map(|r| (*r).clone()).collect();
        let mut cols = Vec::new();
        for m in [
            &mut lhmm as &mut dyn MapMatcher,
            &mut dmm as &mut dyn MapMatcher,
            &mut stm_m as &mut dyn MapMatcher,
        ] {
            let rep = evaluate_matcher(&ds, m, &records);
            cols.push((rep.method.clone(), rep.cmf50));
        }
        rows.push((level as f64 + 1.0, cols));
    }
    sink.emit(&series_table(
        "Fig. 7a: CMF50 vs distance-to-center level (1=core, 5=fringe)",
        "level",
        &rows,
    ));
}

// ---------------------------------------------------------------------
// Fig. 7b — sampling-rate robustness
// ---------------------------------------------------------------------

fn fig7b(args: &Args, sink: &mut Sink) {
    // Denser base sampling so low rates still leave enough points.
    let mut cfg = DatasetConfig::hangzhou_like(args.scale, args.seed);
    cfg.sampling.cell_interval_mean = 30.0;
    eprintln!("[gen] hangzhou-like (dense sampling) ...");
    let ds = Dataset::generate(&cfg);
    let mut lhmm = train_lhmm(&ds, lhmm_config(args.seed));
    let mut dmm = train_seq2seq(&ds, Seq2SeqConfig::dmm(args.seed));
    let mut stm_m = stm(&ds.network);

    let mut rows = Vec::new();
    for rate in [0.2, 0.4, 0.6, 0.8, 1.0, 1.2, 1.4] {
        // Thin every test trajectory to the target rate.
        let thinned: Vec<TrajectoryRecord> = ds
            .test
            .iter()
            .map(|rec| {
                let (cellular, true_positions) =
                    thin_to_rate(&rec.cellular, &rec.true_positions, rate);
                TrajectoryRecord {
                    cellular,
                    gps: rec.gps.clone(),
                    truth: rec.truth.clone(),
                    true_positions,
                }
            })
            .filter(|r| r.cellular.len() >= 3)
            .collect();
        if thinned.is_empty() {
            continue;
        }
        let mut cols = Vec::new();
        for m in [
            &mut lhmm as &mut dyn MapMatcher,
            &mut dmm as &mut dyn MapMatcher,
            &mut stm_m as &mut dyn MapMatcher,
        ] {
            let rep = evaluate_matcher(&ds, m, &thinned);
            cols.push((rep.method.clone(), rep.cmf50));
        }
        rows.push((rate, cols));
    }
    sink.emit(&series_table(
        "Fig. 7b: CMF50 vs sampling rate (samples/minute)",
        "rate",
        &rows,
    ));
}

// ---------------------------------------------------------------------
// Fig. 8 — candidate number k
// ---------------------------------------------------------------------

fn fig8(args: &Args, sink: &mut Sink) {
    let ds = hangzhou(args);
    let mut lhmm = train_lhmm(&ds, lhmm_config(args.seed));
    let mut rows = Vec::new();
    for k in [10usize, 20, 30, 40, 50, 60] {
        lhmm.set_k(k);
        let rep = evaluate_matcher(&ds, &mut lhmm, &ds.test);
        rows.push((
            k as f64,
            vec![
                ("CMF50".to_string(), rep.cmf50),
                ("precision".to_string(), rep.precision),
                ("time".to_string(), rep.avg_time_s),
            ],
        ));
    }
    sink.emit(&series_table(
        "Fig. 8: impact of candidate number k (LHMM)",
        "k",
        &rows,
    ));
}

// ---------------------------------------------------------------------
// Fig. 9 — shortcut number K
// ---------------------------------------------------------------------

fn fig9(args: &Args, sink: &mut Sink) {
    let ds = hangzhou(args);
    let mut lhmm = train_lhmm(&ds, lhmm_config(args.seed));
    let mut rows = Vec::new();
    for k in 0..=4usize {
        lhmm.set_shortcuts(k);
        let rep = evaluate_matcher(&ds, &mut lhmm, &ds.test);
        rows.push((
            k as f64,
            vec![
                ("CMF50".to_string(), rep.cmf50),
                ("HR".to_string(), rep.hitting_ratio.unwrap_or(0.0)),
                ("time".to_string(), rep.avg_time_s),
            ],
        ));
    }
    sink.emit(&series_table(
        "Fig. 9: impact of shortcut number K (LHMM)",
        "K",
        &rows,
    ));
}

// ---------------------------------------------------------------------
// Fig. 10 — data scale
// ---------------------------------------------------------------------

fn with_train_subset(ds: &Dataset, train: Vec<TrajectoryRecord>) -> Dataset {
    Dataset {
        name: ds.name.clone(),
        network: ds.network.clone(),
        towers: ds.towers.clone(),
        index: lhmm_network::spatial::SpatialIndex::build(&ds.network, 250.0),
        train,
        val: ds.val.clone(),
        test: ds.test.clone(),
        config: ds.config.clone(),
    }
}

fn fig10a(args: &Args, sink: &mut Sink) {
    let ds = hangzhou(args);
    let mut rows = Vec::new();
    for cap in [1usize, 3, 5, 10, 20, 40] {
        // Keep at most `cap` trajectories per tower (greedy).
        let mut per_tower: HashMap<u32, usize> = HashMap::new();
        let subset: Vec<TrajectoryRecord> = ds
            .train
            .iter()
            .filter(|rec| {
                let ok = rec
                    .cellular
                    .points
                    .iter()
                    .any(|p| *per_tower.get(&p.tower.0).unwrap_or(&0) < cap);
                if ok {
                    for p in &rec.cellular.points {
                        *per_tower.entry(p.tower.0).or_insert(0) += 1;
                    }
                }
                ok
            })
            .cloned()
            .collect();
        let n_subset = subset.len();
        let sub_ds = with_train_subset(&ds, subset);
        let mut lhmm = train_lhmm(&sub_ds, lhmm_config(args.seed));
        let rep = evaluate_matcher(&sub_ds, &mut lhmm, &sub_ds.test);
        rows.push((
            cap as f64,
            vec![
                ("CMF50".to_string(), rep.cmf50),
                ("HR".to_string(), rep.hitting_ratio.unwrap_or(0.0)),
                ("trainN".to_string(), n_subset as f64),
            ],
        ));
    }
    sink.emit(&series_table(
        "Fig. 10a: CMF50 vs trajectories per tower (train cap)",
        "cap",
        &rows,
    ));
}

fn fig10b(args: &Args, sink: &mut Sink) {
    let ds = hangzhou(args);
    let mut rows = Vec::new();
    for frac in [0.1, 0.25, 0.5, 0.75, 1.0] {
        let n = (((ds.train.len() as f64) * frac) as usize).max(4);
        let sub_ds = with_train_subset(&ds, ds.train[..n].to_vec());
        let mut lhmm = train_lhmm(&sub_ds, lhmm_config(args.seed));
        let rep = evaluate_matcher(&sub_ds, &mut lhmm, &sub_ds.test);
        rows.push((
            frac,
            vec![
                ("CMF50".to_string(), rep.cmf50),
                ("HR".to_string(), rep.hitting_ratio.unwrap_or(0.0)),
            ],
        ));
    }
    sink.emit(&series_table(
        "Fig. 10b: CMF50 vs fraction of training trajectories",
        "fraction",
        &rows,
    ));
}

// ---------------------------------------------------------------------
// Fig. 11 — case study
// ---------------------------------------------------------------------

fn fig11(args: &Args, sink: &mut Sink) {
    use lhmm_eval::metrics::evaluate_path;

    let ds = hangzhou(args);
    let mut lhmm = train_lhmm(&ds, lhmm_config(args.seed));
    let mut dmm = train_seq2seq(&ds, Seq2SeqConfig::dmm(args.seed));
    let ctx = MatchContext {
        net: &ds.network,
        index: &ds.index,
        towers: &ds.towers,
    };

    // Find the test case where DMM does worst relative to LHMM.
    let mut best: Option<(usize, f64, f64)> = None;
    for (i, rec) in ds.test.iter().enumerate() {
        let r_l = lhmm.match_trajectory(&ctx, &rec.cellular);
        let r_d = dmm.match_trajectory(&ctx, &rec.cellular);
        let q_l = evaluate_path(&ds.network, &r_l.path, &rec.truth);
        let q_d = evaluate_path(&ds.network, &r_d.path, &rec.truth);
        let gap = q_d.cmf50 - q_l.cmf50;
        match best {
            Some((_, bl, bd)) if (bd - bl) >= gap => {}
            _ => best = Some((i, q_l.cmf50, q_d.cmf50)),
        }
    }
    let (idx, cmf_l, cmf_d) = best.expect("non-empty test split");
    let rec = &ds.test[idx];
    sink.emit("== Fig. 11: challenging case study ==");
    sink.emit(&format!(
        "case: test trajectory #{idx} ({} points, truth {} segments)",
        rec.cellular.len(),
        rec.truth.len()
    ));
    sink.emit(&format!("  LHMM CMF50 = {cmf_l:.3}"));
    sink.emit(&format!("  DMM  CMF50 = {cmf_d:.3}"));

    // GeoJSON export for visual inspection.
    let r_l = lhmm.match_trajectory(&ctx, &rec.cellular);
    let r_d = dmm.match_trajectory(&ctx, &rec.cellular);
    let geojson = case_geojson(&ds, rec, &r_l.path, &r_d.path);
    let path = format!("{}/fig11_case.geojson", args.out);
    std::fs::write(&path, geojson).expect("write geojson");
    sink.emit(&format!("  geometry written to {path}"));
    sink.emit("");
}

fn case_geojson(
    ds: &Dataset,
    rec: &TrajectoryRecord,
    lhmm_path: &lhmm_network::path::Path,
    dmm_path: &lhmm_network::path::Path,
) -> String {
    let line = |pts: &[lhmm_geo::Point]| -> String {
        let coords: Vec<String> = pts
            .iter()
            .map(|p| format!("[{:.1},{:.1}]", p.x, p.y))
            .collect();
        format!("[{}]", coords.join(","))
    };
    let mut features = Vec::new();
    let mut add = |name: &str, coords: String, kind: &str| {
        features.push(format!(
            r#"{{"type":"Feature","properties":{{"name":"{name}"}},"geometry":{{"type":"{kind}","coordinates":{coords}}}}}"#
        ));
    };
    add("truth", line(&rec.truth.polyline(&ds.network)), "LineString");
    add("lhmm", line(&lhmm_path.polyline(&ds.network)), "LineString");
    add("dmm", line(&dmm_path.polyline(&ds.network)), "LineString");
    let towers: Vec<String> = rec
        .cellular
        .points
        .iter()
        .map(|p| format!("[{:.1},{:.1}]", p.pos.x, p.pos.y))
        .collect();
    add(
        "cellular_points",
        format!("[{}]", towers.join(",")),
        "MultiPoint",
    );
    let mut out = String::new();
    let _ = write!(
        out,
        r#"{{"type":"FeatureCollection","features":[{}]}}"#,
        features.join(",")
    );
    out
}
