//! Machine-readable companion to `benches/bench_scoring.rs`: runs the
//! same per-trajectory scoring workload (learned `P_O` + `P_T`, candidate
//! batches swept over `k`) under every mode the criterion bench sweeps —
//! the PR 2 scalar reference path plus the fused fast path once per SIMD
//! kernel this machine supports — and writes the timings to
//! `BENCH_scoring.json` at the workspace root.
//!
//!     cargo run --release -p lhmm-bench --bin bench_scoring_json [OUT.json]
//!
//! The JSON records per-iteration latency (median over the measured
//! iterations), throughput, and two speedup ratios per fused mode: vs the
//! scalar *reference* path (`speedup_vs_scalar`) and vs the fused path on
//! the scalar *kernel* (`speedup_vs_fused_scalar` — what SIMD alone buys
//! on top of the PR 2 batched fast path). All modes produce bit-identical
//! scores (`tests/kernel_corpus.rs`), so the ratios compare pure speed.

use std::time::Instant;

use lhmm_cellsim::dataset::{Dataset, DatasetConfig};
use lhmm_cellsim::tower::TowerId;
use lhmm_core::lhmm::{LhmmConfig, LhmmModel};
use lhmm_core::transition::TrajTransScorer;
use lhmm_geo::Point;
use lhmm_network::graph::SegmentId;
use lhmm_neural::kernel::{self, Kernel};
use lhmm_neural::Scratch;

/// One timed mode at one candidate-set size.
struct Sample {
    mode: String,
    k: usize,
    iters: usize,
    median_iter_us: f64,
    iters_per_s: f64,
}

fn main() {
    let out_path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_scoring.json".to_string());

    let ds = Dataset::generate(&DatasetConfig::tiny_test(107));
    let mut cfg = LhmmConfig::fast_test(107);
    cfg.obs.epochs = 20;
    cfg.obs.fuse_epochs = 10;
    cfg.trans.epochs = 20;
    cfg.trans.fuse_epochs = 10;
    let model = LhmmModel::train(&ds, cfg);
    let obs = model.observation_learner().expect("learned P_O");
    let trans = model.transition_learner().expect("learned P_T");
    let emb = model.embeddings();

    let rec = ds
        .test
        .iter()
        .max_by_key(|r| r.cellular.len())
        .expect("non-empty test split");
    let towers = rec.cellular.towers();
    let routes: Vec<&[SegmentId]> = rec.truth.segments.windows(5).step_by(5).take(12).collect();

    let supported = kernel::supported_kernels();
    let mut samples: Vec<Sample> = Vec::new();

    for k in [4usize, 8, 16, 32] {
        let batches: Vec<(Point, TowerId, Vec<SegmentId>)> = rec
            .cellular
            .points
            .iter()
            .map(|p| {
                let pos = p.effective_pos();
                let segs: Vec<SegmentId> = ds
                    .index
                    .k_nearest(&ds.network, pos, k, 3_000.0)
                    .into_iter()
                    .map(|(s, _)| s)
                    .collect();
                (pos, p.tower, segs)
            })
            .filter(|(_, _, segs)| !segs.is_empty())
            .collect();

        // One iteration = the full workload of the criterion bench: score
        // every point batch through P_O, then the route windows through
        // P_T, arena round-tripping through `finish` for warm buffers.
        let one_iter = |scalar: bool,
                        obs_scratch: &mut Scratch,
                        trans_scratch: &mut Scratch,
                        out: &mut Vec<f32>|
         -> f32 {
            let mut po = obs.traj_scorer(emb, &towers, std::mem::take(obs_scratch), scalar);
            let mut acc = 0.0f32;
            for (i, (pos, tower, segs)) in batches.iter().enumerate() {
                po.score_into(&ds.network, model.graph(), *pos, *tower, i, segs, out);
                acc += out.iter().sum::<f32>();
            }
            (*obs_scratch, _) = po.finish();
            let mut pt =
                TrajTransScorer::with_scratch(trans, emb, &towers, std::mem::take(trans_scratch), scalar);
            for r in &routes {
                acc += pt.transition_prob(&ds.network, 650.0, 40.0, 880.0, r);
            }
            (*trans_scratch, _) = pt.finish();
            acc
        };

        let mut measure = |mode: &str, scalar: bool, kern: Option<Kernel>| {
            let _guard = kern.and_then(kernel::force_scope);
            let mut obs_scratch = Scratch::new();
            let mut trans_scratch = Scratch::new();
            let mut out = Vec::new();
            let mut sink = 0.0f32;
            // Warm the arenas and estimate per-iteration cost.
            let warm_start = Instant::now();
            for _ in 0..3 {
                sink += one_iter(scalar, &mut obs_scratch, &mut trans_scratch, &mut out);
            }
            let est = warm_start.elapsed().as_secs_f64() / 3.0;
            // Aim for ~0.4 s of measurement per mode, at least 20 iters.
            let iters = ((0.4 / est.max(1e-9)) as usize).clamp(20, 20_000);
            let mut times_us: Vec<f64> = Vec::with_capacity(iters);
            for _ in 0..iters {
                let t = Instant::now();
                sink += one_iter(scalar, &mut obs_scratch, &mut trans_scratch, &mut out);
                times_us.push(t.elapsed().as_secs_f64() * 1e6);
            }
            std::hint::black_box(sink);
            times_us.sort_by(f64::total_cmp);
            let median_iter_us = times_us[times_us.len() / 2];
            samples.push(Sample {
                mode: mode.to_string(),
                k,
                iters,
                median_iter_us,
                iters_per_s: 1e6 / median_iter_us,
            });
            eprintln!("  {mode:<14} k={k:<3} {median_iter_us:9.1} us/iter ({iters} iters)");
        };

        eprintln!("k = {k}:");
        measure("scalar", true, None);
        for kern in &supported {
            measure(&format!("fused_{}", kern.name()), false, Some(*kern));
        }
    }

    let json = render_json(&samples, &supported);
    std::fs::write(&out_path, &json).expect("write BENCH_scoring.json");
    eprintln!("wrote {out_path}");

    // Surface the headline number the acceptance gate cares about: SIMD
    // speedup over the fused-scalar path at k = 16.
    if let Some(line) = headline(&samples) {
        println!("{line}");
    }
}

/// Best SIMD-over-fused-scalar ratio at k = 16, as a human-readable line.
fn headline(samples: &[Sample]) -> Option<String> {
    let base = samples
        .iter()
        .find(|s| s.k == 16 && s.mode == "fused_scalar")?;
    let best = samples
        .iter()
        .filter(|s| s.k == 16 && s.mode.starts_with("fused_") && s.mode != "fused_scalar")
        .max_by(|a, b| a.iters_per_s.total_cmp(&b.iters_per_s))?;
    Some(format!(
        "k=16: {} is {:.2}x the fused_scalar path ({:.1} vs {:.1} us/iter)",
        best.mode,
        base.median_iter_us / best.median_iter_us,
        best.median_iter_us,
        base.median_iter_us,
    ))
}

/// Hand-rolled JSON (the workspace deliberately carries no serde): one
/// entry per (mode, k) with latency, throughput, and speedup ratios.
fn render_json(samples: &[Sample], supported: &[Kernel]) -> String {
    let ref_at = |k: usize, mode: &str| -> Option<f64> {
        samples
            .iter()
            .find(|s| s.k == k && s.mode == mode)
            .map(|s| s.median_iter_us)
    };
    let mut rows = Vec::new();
    for s in samples {
        let vs_scalar = ref_at(s.k, "scalar").map(|r| r / s.median_iter_us);
        let vs_fused_scalar = ref_at(s.k, "fused_scalar").map(|r| r / s.median_iter_us);
        let fmt_ratio = |r: Option<f64>| {
            r.map(|v| format!("{v:.3}")).unwrap_or_else(|| "null".into())
        };
        rows.push(format!(
            "    {{\"mode\": \"{}\", \"k\": {}, \"iters\": {}, \"median_iter_us\": {:.2}, \
             \"iters_per_s\": {:.1}, \"speedup_vs_scalar\": {}, \"speedup_vs_fused_scalar\": {}}}",
            s.mode,
            s.k,
            s.iters,
            s.median_iter_us,
            s.iters_per_s,
            fmt_ratio(vs_scalar),
            fmt_ratio(vs_fused_scalar),
        ));
    }
    let kernels: Vec<String> = supported.iter().map(|k| format!("\"{}\"", k.name())).collect();
    format!(
        "{{\n  \"bench\": \"scoring_one_trajectory\",\n  \"workload\": \"full per-trajectory P_O + P_T scoring (see benches/bench_scoring.rs)\",\n  \"supported_kernels\": [{}],\n  \"default_kernel\": \"{}\",\n  \"results\": [\n{}\n  ]\n}}\n",
        kernels.join(", "),
        kernel::active().name(),
        rows.join(",\n"),
    )
}
