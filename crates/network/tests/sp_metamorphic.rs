//! Metamorphic shortest-path suite, run against BOTH backends.
//!
//! Three relations that must hold regardless of algorithm:
//!
//! * **Monotonicity** — adding an edge never increases any shortest
//!   distance.
//! * **Scale equivariance** — scaling all node positions by 2.0 scales
//!   every distance by exactly 2.0, *bitwise*: segment lengths are
//!   `sqrt(dx² + dy²)` and route lengths are left-folds of additions,
//!   and multiplication by a power of two commutes with IEEE rounding
//!   through `*`, `+`, and the correctly rounded `sqrt`.
//! * **Symmetry** — on an exact-arithmetic undirected network (uniform
//!   grid, axis edges only), `d(a, b)` equals `d(b, a)` bitwise even
//!   though the fold runs in the opposite order: every fold is exact.

use lhmm_geo::Point;
use lhmm_network::backend::{SpBackend, SpEngine, SpHandle};
use lhmm_network::builder::NetworkBuilder;
use lhmm_network::generators::{generate_city, GeneratorConfig};
use lhmm_network::graph::RoadClass;
use lhmm_network::shortest_path::UNREACHABLE;
use lhmm_network::{NodeId, RoadNetwork};
use proptest::prelude::*;
use std::cmp::Ordering;

const BACKENDS: [SpBackend; 2] = [SpBackend::Dijkstra, SpBackend::Ch];

fn engine_for(net: &RoadNetwork, backend: SpBackend) -> SpEngine {
    SpHandle::build(net, backend).engine(net)
}

/// Rebuilds `net` with every node position multiplied by `factor`,
/// preserving node and segment ids.
fn scaled_clone(net: &RoadNetwork, factor: f64) -> RoadNetwork {
    let mut b = NetworkBuilder::new();
    for node in net.node_ids() {
        let p = net.node_pos(node);
        b.add_node(Point::new(p.x * factor, p.y * factor));
    }
    for sid in net.segment_ids() {
        let s = net.segment(sid);
        b.add_segment(s.from, s.to, s.class).unwrap();
    }
    b.build().unwrap()
}

/// Rebuilds `net` with one extra two-way road between `a` and `b`.
fn with_extra_edge(net: &RoadNetwork, a: NodeId, b: NodeId) -> RoadNetwork {
    let mut builder = NetworkBuilder::new();
    for node in net.node_ids() {
        builder.add_node(net.node_pos(node));
    }
    for sid in net.segment_ids() {
        let s = net.segment(sid);
        builder.add_segment(s.from, s.to, s.class).unwrap();
    }
    builder.add_two_way(a, b, RoadClass::Arterial).unwrap();
    builder.build().unwrap()
}

/// Uniform n×n grid, axis edges only: all arithmetic exact.
fn uniform_grid(n: usize, spacing: f64) -> RoadNetwork {
    let mut b = NetworkBuilder::new();
    let mut ids = Vec::new();
    for y in 0..n {
        for x in 0..n {
            ids.push(b.add_node(Point::new(x as f64 * spacing, y as f64 * spacing)));
        }
    }
    for y in 0..n {
        for x in 0..n {
            let i = y * n + x;
            if x + 1 < n {
                b.add_two_way(ids[i], ids[i + 1], RoadClass::Collector).unwrap();
            }
            if y + 1 < n {
                b.add_two_way(ids[i], ids[i + n], RoadClass::Collector).unwrap();
            }
        }
    }
    b.build().unwrap()
}

#[test]
fn scaling_positions_by_two_scales_distances_bitwise() {
    for seed in [3u64, 17, 92] {
        let net = generate_city(&GeneratorConfig::small_test(seed));
        let scaled = scaled_clone(&net, 2.0);
        // Segment lengths double exactly.
        for sid in net.segment_ids() {
            let l = net.segment(sid).length;
            let l2 = scaled.segment(sid).length;
            assert_eq!((l * 2.0).to_bits(), l2.to_bits(), "segment {sid:?} seed {seed}");
        }
        let n = net.num_nodes() as u32;
        for backend in BACKENDS {
            let mut eng = engine_for(&net, backend);
            let mut eng2 = engine_for(&scaled, backend);
            for i in 0..25u32 {
                let s = NodeId((i * 13 + seed as u32) % n);
                let t = NodeId((i * 57 + 19) % n);
                let r = eng.node_to_node(&net, s, t, UNREACHABLE);
                let r2 = eng2.node_to_node(&scaled, s, t, UNREACHABLE);
                match (&r, &r2) {
                    (Some(x), Some(y)) => {
                        assert_eq!(
                            (x.length * 2.0).to_bits(),
                            y.length.to_bits(),
                            "{backend:?} {s:?}->{t:?} seed {seed}"
                        );
                        assert_eq!(x.segments, y.segments, "{backend:?} {s:?}->{t:?}");
                    }
                    (None, None) => {}
                    _ => panic!("{backend:?} {s:?}->{t:?}: reachability changed under scaling"),
                }
            }
        }
    }
}

#[test]
fn reverse_queries_are_bitwise_symmetric_on_undirected_exact_grid() {
    let net = uniform_grid(8, 125.0);
    let n = net.num_nodes() as u32;
    for backend in BACKENDS {
        let mut eng = engine_for(&net, backend);
        for i in 0..50u32 {
            let a = NodeId((i * 11) % n);
            let b = NodeId((i * 37 + 23) % n);
            let ab = eng.node_to_node(&net, a, b, UNREACHABLE).map(|r| r.length);
            let ba = eng.node_to_node(&net, b, a, UNREACHABLE).map(|r| r.length);
            assert_eq!(
                ab.map(f64::to_bits),
                ba.map(f64::to_bits),
                "{backend:?} {a:?}<->{b:?}"
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Adding a road never increases any shortest distance, under either
    /// backend, and the two backends agree bitwise before and after.
    #[test]
    fn adding_an_edge_never_increases_distances(seed in 0u64..500, pick in 0u32..10_000) {
        let net = generate_city(&GeneratorConfig::small_test(seed));
        let n = net.num_nodes() as u32;
        let a = NodeId(pick % n);
        let b = NodeId((pick.wrapping_mul(7).wrapping_add(n / 2)) % n);
        prop_assume!(a != b);
        let bigger = with_extra_edge(&net, a, b);

        for backend in BACKENDS {
            let mut before = engine_for(&net, backend);
            let mut after = engine_for(&bigger, backend);
            for i in 0..15u32 {
                let s = NodeId((i * 41 + seed as u32) % n);
                let t = NodeId((i * 89 + 31) % n);
                let d0 = before.node_to_node(&net, s, t, UNREACHABLE).map(|r| r.length);
                let d1 = after.node_to_node(&bigger, s, t, UNREACHABLE).map(|r| r.length);
                match (d0, d1) {
                    (Some(x), Some(y)) => prop_assert!(
                        y.total_cmp(&x) != Ordering::Greater,
                        "{backend:?} {s:?}->{t:?}: {x} -> {y} increased"
                    ),
                    // New edge can connect components, never disconnect.
                    (None, _) => {}
                    (Some(_), None) => prop_assert!(
                        false,
                        "{backend:?} {s:?}->{t:?} became unreachable after adding an edge"
                    ),
                }
            }
        }

        // Cross-backend agreement on the modified network.
        let mut dij = engine_for(&bigger, SpBackend::Dijkstra);
        let mut ch = engine_for(&bigger, SpBackend::Ch);
        for i in 0..10u32 {
            let s = NodeId((i * 23 + 7) % n);
            let t = NodeId((i * 67 + seed as u32) % n);
            let x = dij.node_to_node(&bigger, s, t, UNREACHABLE).map(|r| r.length.to_bits());
            let y = ch.node_to_node(&bigger, s, t, UNREACHABLE).map(|r| r.length.to_bits());
            prop_assert_eq!(x, y, "backends disagree on modified network {:?}->{:?}", s, t);
        }
    }
}

/// Guards the constant itself: one shared sentinel, compared with
/// ordering operators (never float `==` against computed values), and
/// usable directly as the unbounded query bound.
#[test]
fn unreachable_constant_is_the_unbounded_bound() {
    assert!(UNREACHABLE.is_infinite() && UNREACHABLE > 0.0);
    let net = uniform_grid(3, 100.0);
    for backend in BACKENDS {
        let mut eng = engine_for(&net, backend);
        let r = eng
            .node_to_node(&net, NodeId(0), NodeId(8), UNREACHABLE)
            .unwrap();
        assert!(r.length < UNREACHABLE);
        assert_eq!(r.segments.len(), 4);
    }
}
