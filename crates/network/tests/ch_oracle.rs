//! Dijkstra-oracle property suite for the contraction-hierarchy backend.
//!
//! The CH engine is only allowed into the matching pipeline because this
//! suite pins it **bitwise** to the scalar Dijkstra oracle: every
//! distance must be `total_cmp`-equal (not approximately equal), every
//! reachability verdict must agree — including unreachable pairs across
//! disconnected components — and repeated queries must be bitwise
//! deterministic.

use lhmm_geo::Point;
use lhmm_network::backend::{SpBackend, SpHandle};
use lhmm_network::builder::NetworkBuilder;
use lhmm_network::ch::{ChQuery, ContractionHierarchy};
use lhmm_network::generators::{generate_city, GeneratorConfig};
use lhmm_network::graph::RoadClass;
use lhmm_network::shortest_path::{DijkstraEngine, UNREACHABLE};
use lhmm_network::{NodeId, RoadNetwork};
use proptest::prelude::*;
use std::cmp::Ordering;

/// Uniform n×n grid, axis edges only: all arithmetic exact.
fn uniform_grid(n: usize, spacing: f64) -> RoadNetwork {
    let mut b = NetworkBuilder::new();
    let mut ids = Vec::new();
    for y in 0..n {
        for x in 0..n {
            ids.push(b.add_node(Point::new(x as f64 * spacing, y as f64 * spacing)));
        }
    }
    for y in 0..n {
        for x in 0..n {
            let i = y * n + x;
            if x + 1 < n {
                b.add_two_way(ids[i], ids[i + 1], RoadClass::Collector).unwrap();
            }
            if y + 1 < n {
                b.add_two_way(ids[i], ids[i + n], RoadClass::Collector).unwrap();
            }
        }
    }
    b.build().unwrap()
}

/// Hub-and-spoke: one center, `spokes` rays of `depth` nodes each, plus a
/// ring joining the innermost ring nodes. High-degree hub stresses the
/// contraction order.
fn radial(spokes: usize, depth: usize) -> RoadNetwork {
    let mut b = NetworkBuilder::new();
    let hub = b.add_node(Point::new(0.0, 0.0));
    let mut rings: Vec<Vec<_>> = Vec::new();
    for s in 0..spokes {
        let angle = s as f64 / spokes as f64 * std::f64::consts::TAU;
        let mut prev = hub;
        let mut ray = Vec::new();
        for d in 1..=depth {
            let r = d as f64 * 120.0;
            let id = b.add_node(Point::new(r * angle.cos(), r * angle.sin()));
            b.add_two_way(prev, id, RoadClass::Local).unwrap();
            prev = id;
            ray.push(id);
        }
        rings.push(ray);
    }
    for s in 0..spokes {
        b.add_two_way(rings[s][0], rings[(s + 1) % spokes][0], RoadClass::Collector)
            .unwrap();
    }
    b.build().unwrap()
}

/// Two disjoint 3×3 grids in one network: cross-component queries must be
/// `None` under both backends.
fn two_components() -> RoadNetwork {
    let mut b = NetworkBuilder::new();
    let mut make_grid = |ox: f64| {
        let mut ids = Vec::new();
        for y in 0..3 {
            for x in 0..3 {
                ids.push(b.add_node(Point::new(ox + x as f64 * 100.0, y as f64 * 100.0)));
            }
        }
        for y in 0..3 {
            for x in 0..3 {
                let i = y * 3 + x;
                if x + 1 < 3 {
                    b.add_two_way(ids[i], ids[i + 1], RoadClass::Local).unwrap();
                }
                if y + 1 < 3 {
                    b.add_two_way(ids[i], ids[i + 3], RoadClass::Local).unwrap();
                }
            }
        }
        ids
    };
    let _left = make_grid(0.0);
    let _right = make_grid(1e6);
    b.build().unwrap()
}

/// Asserts CH ≡ Dijkstra for one pair at one bound. Distances compare via
/// `total_cmp`; segment sequences must match when `check_segments`.
#[allow(clippy::too_many_arguments)]
fn assert_pair(
    net: &RoadNetwork,
    ch: &ContractionHierarchy,
    q: &mut ChQuery,
    dij: &mut DijkstraEngine,
    s: NodeId,
    t: NodeId,
    bound: f64,
    check_segments: bool,
) {
    let a = q.route(ch, net, s, t, bound);
    let b = dij.node_to_node(net, s, t, bound);
    match (&a, &b) {
        (Some(x), Some(y)) => {
            assert_eq!(
                x.length.total_cmp(&y.length),
                Ordering::Equal,
                "{s:?}->{t:?}@{bound}: ch={} dij={}",
                x.length,
                y.length
            );
            if check_segments {
                assert_eq!(x.segments, y.segments, "{s:?}->{t:?}@{bound}");
            }
        }
        (None, None) => {}
        _ => panic!(
            "{s:?}->{t:?}@{bound}: ch={:?} dij={:?}",
            a.as_ref().map(|r| r.length),
            b.as_ref().map(|r| r.length)
        ),
    }
}

#[test]
fn degenerate_networks_are_rejected_by_the_builder() {
    // CH never sees an empty or single-node network: the builder refuses
    // to construct one, under both backends equally.
    assert!(NetworkBuilder::new().build().is_err());
    let mut single = NetworkBuilder::new();
    single.add_node(Point::new(0.0, 0.0));
    assert!(single.build().is_err());
    // Self-loops (the only possible single-node edge) are rejected too.
    let mut looped = NetworkBuilder::new();
    let n = looped.add_node(Point::new(0.0, 0.0));
    assert!(looped.add_segment(n, n, RoadClass::Local).is_err());
}

#[test]
fn smallest_valid_network_matches_oracle() {
    let mut b = NetworkBuilder::new();
    let a = b.add_node(Point::new(0.0, 0.0));
    let c = b.add_node(Point::new(300.0, 400.0));
    b.add_two_way(a, c, RoadClass::Local).unwrap();
    let net = b.build().unwrap();
    let ch = ContractionHierarchy::build(&net);
    let mut q = ChQuery::new(&ch);
    let mut dij = DijkstraEngine::new(&net);
    for &(s, t) in &[(a, c), (c, a), (a, a), (c, c)] {
        for &bound in &[0.0, 499.0, 500.0, 1e9, UNREACHABLE] {
            assert_pair(&net, &ch, &mut q, &mut dij, s, t, bound, true);
        }
    }
}

#[test]
fn disconnected_components_are_unreachable_under_both_backends() {
    let net = two_components();
    let ch = ContractionHierarchy::build(&net);
    let mut q = ChQuery::new(&ch);
    let mut dij = DijkstraEngine::new(&net);
    // Node 0..9 left grid, 9..18 right grid.
    for s in 0..9u32 {
        for t in 9..18u32 {
            assert!(q.route(&ch, &net, NodeId(s), NodeId(t), UNREACHABLE).is_none());
            assert!(q.route(&ch, &net, NodeId(t), NodeId(s), UNREACHABLE).is_none());
            assert_pair(
                &net,
                &ch,
                &mut q,
                &mut dij,
                NodeId(s),
                NodeId(t),
                UNREACHABLE,
                true,
            );
        }
    }
    // Within-component queries still work. The uniform grids have tied
    // shortest paths, so only distances are pinned here.
    assert_pair(&net, &ch, &mut q, &mut dij, NodeId(0), NodeId(8), UNREACHABLE, false);
    assert_pair(&net, &ch, &mut q, &mut dij, NodeId(9), NodeId(17), UNREACHABLE, false);
}

#[test]
fn radial_network_matches_oracle_exhaustively() {
    let net = radial(7, 4);
    let ch = ContractionHierarchy::build(&net);
    let mut q = ChQuery::new(&ch);
    let mut dij = DijkstraEngine::new(&net);
    let n = net.num_nodes() as u32;
    for s in 0..n {
        for t in 0..n {
            // Radial geometry is irrational: shortest paths are unique, so
            // segment sequences must match too.
            assert_pair(&net, &ch, &mut q, &mut dij, NodeId(s), NodeId(t), UNREACHABLE, true);
        }
    }
}

#[test]
fn uniform_grid_distances_match_bitwise_despite_ties() {
    // Exact arithmetic: many tied shortest paths, but every tied fold is
    // exact, so distances still agree bitwise (segments may differ).
    let net = uniform_grid(7, 250.0);
    let ch = ContractionHierarchy::build(&net);
    let mut q = ChQuery::new(&ch);
    let mut dij = DijkstraEngine::new(&net);
    let n = net.num_nodes() as u32;
    for s in 0..n {
        for t in 0..n {
            assert_pair(&net, &ch, &mut q, &mut dij, NodeId(s), NodeId(t), UNREACHABLE, false);
        }
    }
}

#[test]
fn query_after_query_is_bitwise_deterministic() {
    let net = generate_city(&GeneratorConfig::small_test(42));
    let ch = ContractionHierarchy::build(&net);
    let mut q = ChQuery::new(&ch);
    let n = net.num_nodes() as u32;
    let mut answered = 0usize;
    for i in 0..60u32 {
        let s = NodeId((i * 37) % n);
        let t = NodeId((i * 101 + 13) % n);
        let first = q.route(&ch, &net, s, t, UNREACHABLE);
        // Interleave an unrelated query to dirty the reusable state.
        let _ = q.route(&ch, &net, NodeId((i * 7 + 3) % n), NodeId(i % n), 2_000.0);
        let second = q.route(&ch, &net, s, t, UNREACHABLE);
        // A fresh query object must agree as well.
        let fresh = ChQuery::new(&ch).route(&ch, &net, s, t, UNREACHABLE);
        match (&first, &second, &fresh) {
            (Some(a), Some(b), Some(c)) => {
                assert_eq!(a.length.to_bits(), b.length.to_bits(), "{s:?}->{t:?}");
                assert_eq!(a.length.to_bits(), c.length.to_bits(), "{s:?}->{t:?}");
                assert_eq!(a.segments, b.segments, "{s:?}->{t:?}");
                assert_eq!(a.segments, c.segments, "{s:?}->{t:?}");
                answered += 1;
            }
            (None, None, None) => {}
            _ => panic!("{s:?}->{t:?}: repeat/fresh queries disagree"),
        }
    }
    assert!(answered > 10, "too few reachable pairs exercised");
}

#[test]
fn rebuilding_the_hierarchy_is_deterministic() {
    let net = generate_city(&GeneratorConfig::small_test(7));
    let a = ContractionHierarchy::build(&net);
    let b = ContractionHierarchy::build(&net);
    assert_eq!(a.stats().shortcuts, b.stats().shortcuts);
    assert_eq!(a.stats().base_edges, b.stats().base_edges);
    let mut qa = ChQuery::new(&a);
    let mut qb = ChQuery::new(&b);
    let n = net.num_nodes() as u32;
    for i in 0..40u32 {
        let s = NodeId((i * 19) % n);
        let t = NodeId((i * 53 + 7) % n);
        let ra = qa.route(&a, &net, s, t, UNREACHABLE);
        let rb = qb.route(&b, &net, s, t, UNREACHABLE);
        assert_eq!(
            ra.as_ref().map(|r| (r.length.to_bits(), r.segments.clone())),
            rb.as_ref().map(|r| (r.length.to_bits(), r.segments.clone())),
            "{s:?}->{t:?}"
        );
    }
}

#[test]
fn one_to_many_matches_oracle_with_duplicates_and_self() {
    let net = generate_city(&GeneratorConfig::small_test(23));
    let sp = SpHandle::build(&net, SpBackend::Ch);
    let mut ce = sp.engine(&net);
    let mut de = SpHandle::build(&net, SpBackend::Dijkstra).engine(&net);
    let n = net.num_nodes() as u32;
    let source = NodeId(3 % n);
    let targets = [
        NodeId(10 % n),
        NodeId(10 % n), // duplicate
        source,         // self
        NodeId((n - 1) % n),
        NodeId(27 % n),
    ];
    for &bound in &[500.0, 3_000.0, UNREACHABLE] {
        let a = ce.node_to_nodes(&net, source, &targets, bound);
        let b = de.node_to_nodes(&net, source, &targets, bound);
        assert_eq!(a.len(), b.len());
        for (i, (x, y)) in a.iter().zip(&b).enumerate() {
            match (x, y) {
                (Some(x), Some(y)) => {
                    assert_eq!(x.length.to_bits(), y.length.to_bits(), "target {i}@{bound}");
                    assert_eq!(x.segments, y.segments, "target {i}@{bound}");
                }
                (None, None) => {}
                _ => panic!("target {i}@{bound}: {x:?} vs {y:?}"),
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// On jittered generated cities (unique shortest paths) CH must agree
    /// with Dijkstra bitwise — distance AND segment sequence — for every
    /// sampled pair, at an unbounded and a moderate bound.
    #[test]
    fn ch_equals_dijkstra_on_generated_cities(seed in 0u64..1000, salt in 0u64..1000) {
        let net = generate_city(&GeneratorConfig::small_test(seed));
        let ch = ContractionHierarchy::build(&net);
        let mut q = ChQuery::new(&ch);
        let mut dij = DijkstraEngine::new(&net);
        let n = net.num_nodes() as u32;
        for i in 0..12u64 {
            let s = NodeId(((salt.wrapping_mul(31).wrapping_add(i * 17)) % n as u64) as u32);
            let t = NodeId(((salt.wrapping_mul(7).wrapping_add(i * 41 + 5)) % n as u64) as u32);
            assert_pair(&net, &ch, &mut q, &mut dij, s, t, UNREACHABLE, true);
            assert_pair(&net, &ch, &mut q, &mut dij, s, t, 2_500.0, true);
        }
    }

    /// The reachability verdict flips at exactly the same bound for both
    /// backends: `Some` at `length`, `None` one ulp below it.
    #[test]
    fn bound_cutover_is_bitwise_aligned(seed in 0u64..500) {
        let net = generate_city(&GeneratorConfig::small_test(seed));
        let ch = ContractionHierarchy::build(&net);
        let mut q = ChQuery::new(&ch);
        let mut dij = DijkstraEngine::new(&net);
        let n = net.num_nodes() as u32;
        let s = NodeId(seed as u32 % n);
        let t = NodeId((seed as u32 * 29 + 11) % n);
        prop_assume!(s != t);
        let Some(r) = dij.node_to_node(&net, s, t, UNREACHABLE) else {
            // Unreachable: CH must agree at any bound.
            prop_assert!(q.route(&ch, &net, s, t, UNREACHABLE).is_none());
            return Ok(());
        };
        let at = q.route(&ch, &net, s, t, r.length);
        prop_assert!(at.is_some(), "CH misses route at its exact length");
        prop_assert_eq!(at.map(|x| x.length.to_bits()), Some(r.length.to_bits()));
        let below = r.length.next_down();
        prop_assert!(q.route(&ch, &net, s, t, below).is_none());
        prop_assert!(dij.node_to_node(&net, s, t, below).is_none());
    }
}
