//! The directed road-network graph.

use lhmm_geo::{BBox, Point};

/// Identifier of an intersection (graph node).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(pub u32);

/// Identifier of a directed road segment (graph edge).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SegmentId(pub u32);

impl NodeId {
    /// Index into node-keyed arrays.
    #[inline]
    pub fn idx(self) -> usize {
        self.0 as usize
    }
}

impl SegmentId {
    /// Index into segment-keyed arrays.
    #[inline]
    pub fn idx(self) -> usize {
        self.0 as usize
    }
}

/// Functional class of a road segment; influences simulated travel speed and
/// route choice in `lhmm-cellsim`.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum RoadClass {
    /// High-capacity through road (urban viaduct / arterial).
    Arterial,
    /// Ordinary collector street.
    Collector,
    /// Local access street.
    Local,
}

impl RoadClass {
    /// Free-flow speed in meters/second used by the trip simulator.
    pub fn free_flow_speed(self) -> f64 {
        match self {
            RoadClass::Arterial => 19.4, // ~70 km/h
            RoadClass::Collector => 13.9, // ~50 km/h
            RoadClass::Local => 8.3,      // ~30 km/h
        }
    }
}

/// A directed road segment between two intersections.
///
/// Segment geometry is the straight line between its endpoint nodes; the
/// synthetic generators place nodes densely enough that this matches the
/// fidelity of typical map-matching road models.
#[derive(Clone, Copy, Debug)]
pub struct Segment {
    /// Start intersection.
    pub from: NodeId,
    /// End intersection.
    pub to: NodeId,
    /// Cached Euclidean length in meters.
    pub length: f64,
    /// Functional class.
    pub class: RoadClass,
}

/// A directed road network with CSR adjacency for fast expansion.
#[derive(Clone, Debug)]
pub struct RoadNetwork {
    node_pos: Vec<Point>,
    segments: Vec<Segment>,
    // CSR over outgoing segments per node.
    out_offsets: Vec<u32>,
    out_segments: Vec<SegmentId>,
    // CSR over incoming segments per node.
    in_offsets: Vec<u32>,
    in_segments: Vec<SegmentId>,
    bbox: BBox,
}

impl RoadNetwork {
    /// Assembles a network from parts. Prefer [`crate::builder::NetworkBuilder`]
    /// which validates invariants; this is the raw constructor it calls.
    pub(crate) fn from_parts(node_pos: Vec<Point>, segments: Vec<Segment>) -> Self {
        let n = node_pos.len();
        let mut out_counts = vec![0u32; n];
        let mut in_counts = vec![0u32; n];
        for seg in &segments {
            out_counts[seg.from.idx()] += 1;
            in_counts[seg.to.idx()] += 1;
        }
        let mut out_offsets = Vec::with_capacity(n + 1);
        let mut in_offsets = Vec::with_capacity(n + 1);
        let mut acc = 0u32;
        for c in &out_counts {
            out_offsets.push(acc);
            acc += c;
        }
        out_offsets.push(acc);
        acc = 0;
        for c in &in_counts {
            in_offsets.push(acc);
            acc += c;
        }
        in_offsets.push(acc);

        let mut out_segments = vec![SegmentId(0); segments.len()];
        let mut in_segments = vec![SegmentId(0); segments.len()];
        let mut out_cursor: Vec<u32> = out_offsets[..n].to_vec();
        let mut in_cursor: Vec<u32> = in_offsets[..n].to_vec();
        for (i, seg) in segments.iter().enumerate() {
            let sid = SegmentId(i as u32);
            let oc = &mut out_cursor[seg.from.idx()];
            out_segments[*oc as usize] = sid;
            *oc += 1;
            let ic = &mut in_cursor[seg.to.idx()];
            in_segments[*ic as usize] = sid;
            *ic += 1;
        }

        let bbox = BBox::from_points(&node_pos)
            .unwrap_or_else(|| BBox::from_point(Point::ORIGIN));

        RoadNetwork {
            node_pos,
            segments,
            out_offsets,
            out_segments,
            in_offsets,
            in_segments,
            bbox,
        }
    }

    /// Number of intersections.
    #[inline]
    pub fn num_nodes(&self) -> usize {
        self.node_pos.len()
    }

    /// Number of directed road segments.
    #[inline]
    pub fn num_segments(&self) -> usize {
        self.segments.len()
    }

    /// Position of a node.
    #[inline]
    pub fn node_pos(&self, n: NodeId) -> Point {
        self.node_pos[n.idx()]
    }

    /// Segment record.
    #[inline]
    pub fn segment(&self, s: SegmentId) -> &Segment {
        &self.segments[s.idx()]
    }

    /// Start point of a segment's geometry.
    #[inline]
    pub fn segment_start(&self, s: SegmentId) -> Point {
        self.node_pos(self.segments[s.idx()].from)
    }

    /// End point of a segment's geometry.
    #[inline]
    pub fn segment_end(&self, s: SegmentId) -> Point {
        self.node_pos(self.segments[s.idx()].to)
    }

    /// Midpoint of a segment's geometry, used as its representative position
    /// by the embedding layer.
    #[inline]
    pub fn segment_midpoint(&self, s: SegmentId) -> Point {
        self.segment_start(s).midpoint(self.segment_end(s))
    }

    /// Heading of the segment in radians.
    #[inline]
    pub fn segment_heading(&self, s: SegmentId) -> f64 {
        self.segment_start(s).bearing_to(self.segment_end(s))
    }

    /// Outgoing segments of a node.
    #[inline]
    pub fn out_segments(&self, n: NodeId) -> &[SegmentId] {
        let lo = self.out_offsets[n.idx()] as usize;
        let hi = self.out_offsets[n.idx() + 1] as usize;
        &self.out_segments[lo..hi]
    }

    /// Incoming segments of a node.
    #[inline]
    pub fn in_segments(&self, n: NodeId) -> &[SegmentId] {
        let lo = self.in_offsets[n.idx()] as usize;
        let hi = self.in_offsets[n.idx() + 1] as usize;
        &self.in_segments[lo..hi]
    }

    /// Segments that can directly follow `s` (sharing `s.to`).
    #[inline]
    pub fn successors(&self, s: SegmentId) -> &[SegmentId] {
        self.out_segments(self.segments[s.idx()].to)
    }

    /// Segments that can directly precede `s` (sharing `s.from`).
    #[inline]
    pub fn predecessors(&self, s: SegmentId) -> &[SegmentId] {
        self.in_segments(self.segments[s.idx()].from)
    }

    /// Iterator over all segment ids.
    pub fn segment_ids(&self) -> impl Iterator<Item = SegmentId> {
        (0..self.segments.len() as u32).map(SegmentId)
    }

    /// Iterator over all node ids.
    pub fn node_ids(&self) -> impl Iterator<Item = NodeId> {
        (0..self.node_pos.len() as u32).map(NodeId)
    }

    /// Bounding box of the node positions.
    #[inline]
    pub fn bbox(&self) -> BBox {
        self.bbox
    }

    /// Distance from `p` to the (straight-line) geometry of segment `s`.
    #[inline]
    pub fn distance_to_segment(&self, p: Point, s: SegmentId) -> f64 {
        lhmm_geo::segment::distance_to_segment(p, self.segment_start(s), self.segment_end(s))
    }

    /// Projection of `p` onto segment `s`.
    #[inline]
    pub fn project(&self, p: Point, s: SegmentId) -> lhmm_geo::Projection {
        lhmm_geo::project_onto_segment(p, self.segment_start(s), self.segment_end(s))
    }

    /// The opposite-direction twin of `s` when one exists (a segment from
    /// `s.to` back to `s.from`).
    pub fn reverse_of(&self, s: SegmentId) -> Option<SegmentId> {
        let seg = self.segment(s);
        self.out_segments(seg.to)
            .iter()
            .copied()
            .find(|&c| self.segment(c).to == seg.from)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::NetworkBuilder;

    /// 0 → 1 → 2 with a return edge 2 → 0.
    fn triangle() -> RoadNetwork {
        let mut b = NetworkBuilder::new();
        let a = b.add_node(Point::new(0.0, 0.0));
        let c = b.add_node(Point::new(100.0, 0.0));
        let d = b.add_node(Point::new(100.0, 100.0));
        b.add_segment(a, c, RoadClass::Collector).unwrap();
        b.add_segment(c, d, RoadClass::Collector).unwrap();
        b.add_segment(d, a, RoadClass::Arterial).unwrap();
        b.build().unwrap()
    }

    #[test]
    fn csr_adjacency_is_consistent() {
        let net = triangle();
        assert_eq!(net.num_nodes(), 3);
        assert_eq!(net.num_segments(), 3);
        assert_eq!(net.out_segments(NodeId(0)), &[SegmentId(0)]);
        assert_eq!(net.in_segments(NodeId(0)), &[SegmentId(2)]);
        assert_eq!(net.successors(SegmentId(0)), &[SegmentId(1)]);
        assert_eq!(net.predecessors(SegmentId(1)), &[SegmentId(0)]);
    }

    #[test]
    fn segment_geometry() {
        let net = triangle();
        assert_eq!(net.segment(SegmentId(0)).length, 100.0);
        assert_eq!(net.segment_midpoint(SegmentId(0)), Point::new(50.0, 0.0));
        assert!((net.segment_heading(SegmentId(1)) - std::f64::consts::FRAC_PI_2).abs() < 1e-12);
    }

    #[test]
    fn distance_and_projection() {
        let net = triangle();
        assert_eq!(net.distance_to_segment(Point::new(50.0, 30.0), SegmentId(0)), 30.0);
        let pr = net.project(Point::new(50.0, 30.0), SegmentId(0));
        assert_eq!(pr.point, Point::new(50.0, 0.0));
    }

    #[test]
    fn reverse_of_twin_edges() {
        let mut b = NetworkBuilder::new();
        let a = b.add_node(Point::new(0.0, 0.0));
        let c = b.add_node(Point::new(10.0, 0.0));
        let s_fwd = b.add_segment(a, c, RoadClass::Local).unwrap();
        let s_bwd = b.add_segment(c, a, RoadClass::Local).unwrap();
        let net = b.build().unwrap();
        assert_eq!(net.reverse_of(s_fwd), Some(s_bwd));
        assert_eq!(net.reverse_of(s_bwd), Some(s_fwd));
        let net2 = triangle();
        assert_eq!(net2.reverse_of(SegmentId(0)), None);
    }

    #[test]
    fn road_class_speeds_are_ordered() {
        assert!(RoadClass::Arterial.free_flow_speed() > RoadClass::Collector.free_flow_speed());
        assert!(RoadClass::Collector.free_flow_speed() > RoadClass::Local.free_flow_speed());
    }
}
