//! Uniform-grid spatial index over road segments.
//!
//! Candidate preparation needs, for every trajectory point, the set of road
//! segments within a large radius (cellular positioning errors reach 3 km) or
//! the k nearest segments. A uniform grid is the right structure here: the
//! synthetic cities have near-uniform segment density, queries are huge
//! relative to segment extent, and construction is a single pass.

use crate::graph::{RoadNetwork, SegmentId};
use lhmm_geo::{BBox, Point};
use std::cell::RefCell;

thread_local! {
    // Candidate-id scratch for `segments_within_into`. Thread-local (rather
    // than `&mut self`) because one index is shared immutably across batch
    // worker threads.
    static CAND_SCRATCH: RefCell<Vec<SegmentId>> = const { RefCell::new(Vec::new()) };
}

/// Spatial index over the segments of one [`RoadNetwork`].
pub struct SpatialIndex {
    cell_size: f64,
    origin: Point,
    cols: usize,
    rows: usize,
    cells: Vec<Vec<SegmentId>>,
}

impl SpatialIndex {
    /// Builds the index with the given `cell_size` in meters.
    ///
    /// A cell size near the median segment length (150–300 m for the
    /// synthetic cities) keeps per-cell lists short without exploding the
    /// number of cells a segment spans.
    pub fn build(net: &RoadNetwork, cell_size: f64) -> Self {
        let all: Vec<SegmentId> = net.segment_ids().collect();
        Self::build_subset(net, cell_size, &all)
    }

    /// Builds the index over only `segments` (e.g. one serving tile's
    /// segment set), with grid geometry identical to [`SpatialIndex::build`]
    /// over the full network: same origin, same cell size, and therefore
    /// the same ring-expansion radius sequence in
    /// [`SpatialIndex::k_nearest`]. Every query whose true result set lies
    /// entirely inside `segments` (a point inside a tile core, with a halo
    /// at least as wide as the query radius) returns results byte-identical
    /// to the full index — the invariant geo-sharded serving rests on.
    pub fn build_subset(net: &RoadNetwork, cell_size: f64, segments: &[SegmentId]) -> Self {
        assert!(cell_size > 0.0, "cell size must be positive");
        let bbox = net.bbox().inflated(cell_size);
        let cols = (bbox.width() / cell_size).ceil().max(1.0) as usize;
        let rows = (bbox.height() / cell_size).ceil().max(1.0) as usize;
        let mut idx = SpatialIndex {
            cell_size,
            origin: Point::new(bbox.min_x, bbox.min_y),
            cols,
            rows,
            cells: vec![Vec::new(); cols * rows],
        };
        for &s in segments {
            let sb = BBox::from_segment(net.segment_start(s), net.segment_end(s));
            let (c0, r0) = idx.cell_of(Point::new(sb.min_x, sb.min_y));
            let (c1, r1) = idx.cell_of(Point::new(sb.max_x, sb.max_y));
            for r in r0..=r1 {
                for c in c0..=c1 {
                    idx.cells[r * cols + c].push(s);
                }
            }
        }
        idx
    }

    /// The grid cell size this index was built with. Two subset indexes
    /// built at the same cell size over the same network share their grid
    /// geometry exactly (see [`SpatialIndex::build_subset`]).
    pub fn cell_size(&self) -> f64 {
        self.cell_size
    }

    #[inline]
    fn cell_of(&self, p: Point) -> (usize, usize) {
        let c = ((p.x - self.origin.x) / self.cell_size).floor();
        let r = ((p.y - self.origin.y) / self.cell_size).floor();
        (
            (c.max(0.0) as usize).min(self.cols - 1),
            (r.max(0.0) as usize).min(self.rows - 1),
        )
    }

    /// All segments whose geometry lies within `radius` meters of `p`,
    /// with their distances, unsorted.
    pub fn segments_within(
        &self,
        net: &RoadNetwork,
        p: Point,
        radius: f64,
    ) -> Vec<(SegmentId, f64)> {
        let mut out = Vec::new();
        self.segments_within_into(net, p, radius, &mut out);
        out
    }

    /// [`Self::segments_within`] writing into a caller-owned buffer
    /// (cleared first). Internal candidate storage comes from a thread-local
    /// scratch vector, so a warm caller performs no heap allocation.
    pub fn segments_within_into(
        &self,
        net: &RoadNetwork,
        p: Point,
        radius: f64,
        out: &mut Vec<(SegmentId, f64)>,
    ) {
        out.clear();
        let lo = self.cell_of(Point::new(p.x - radius, p.y - radius));
        let hi = self.cell_of(Point::new(p.x + radius, p.y + radius));
        CAND_SCRATCH.with(|cell| {
            let mut cand = cell.borrow_mut();
            cand.clear();
            for r in lo.1..=hi.1 {
                for c in lo.0..=hi.0 {
                    cand.extend_from_slice(&self.cells[r * self.cols + c]);
                }
            }
            // Segments spanning several cells appear several times; dedup
            // before the (comparatively expensive) exact distance
            // computation.
            cand.sort_unstable();
            cand.dedup();
            for &s in cand.iter() {
                let d = net.distance_to_segment(p, s);
                if d <= radius {
                    out.push((s, d));
                }
            }
        });
    }

    /// The `k` segments nearest to `p` within `max_radius`, sorted by
    /// ascending distance with ties broken by segment id (deterministic).
    /// May return fewer than `k` when the area is sparse.
    pub fn k_nearest(
        &self,
        net: &RoadNetwork,
        p: Point,
        k: usize,
        max_radius: f64,
    ) -> Vec<(SegmentId, f64)> {
        let mut out = Vec::new();
        self.k_nearest_into(net, p, k, max_radius, &mut out);
        out
    }

    /// [`Self::k_nearest`] writing into a caller-owned buffer (cleared
    /// first); the ring-expansion retries reuse that buffer instead of
    /// allocating per ring.
    pub fn k_nearest_into(
        &self,
        net: &RoadNetwork,
        p: Point,
        k: usize,
        max_radius: f64,
        out: &mut Vec<(SegmentId, f64)>,
    ) {
        out.clear();
        if k == 0 {
            return;
        }
        // Expand the search radius ring by ring until k hits are guaranteed.
        let mut radius = self.cell_size;
        loop {
            self.segments_within_into(net, p, radius.min(max_radius), out);
            if out.len() >= k || radius >= max_radius {
                // Tie-break equal distances by segment id so results do not
                // depend on grid-cell visit order.
                out.sort_by(|a, b| a.1.total_cmp(&b.1).then_with(|| a.0.cmp(&b.0)));
                out.truncate(k);
                return;
            }
            radius *= 2.0;
        }
    }

    /// Number of grid cells (diagnostics).
    pub fn num_cells(&self) -> usize {
        self.cells.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::{generate_city, GeneratorConfig};

    fn city() -> RoadNetwork {
        generate_city(&GeneratorConfig::small_test(7))
    }

    /// Brute-force reference: distance to every segment.
    fn brute_within(net: &RoadNetwork, p: Point, radius: f64) -> Vec<(SegmentId, f64)> {
        let mut v: Vec<_> = net
            .segment_ids()
            .map(|s| (s, net.distance_to_segment(p, s)))
            .filter(|&(_, d)| d <= radius)
            .collect();
        v.sort_by(|a, b| a.1.partial_cmp(&b.1).unwrap());
        v
    }

    #[test]
    fn within_matches_brute_force() {
        let net = city();
        let idx = SpatialIndex::build(&net, 200.0);
        for (px, py, radius) in [(300.0, 300.0, 250.0), (0.0, 0.0, 500.0), (900.0, 500.0, 100.0)]
        {
            let p = Point::new(px, py);
            let mut fast = idx.segments_within(&net, p, radius);
            fast.sort_by(|a, b| a.1.partial_cmp(&b.1).unwrap());
            let slow = brute_within(&net, p, radius);
            assert_eq!(fast.len(), slow.len(), "at ({px},{py}) r={radius}");
            for (f, s) in fast.iter().zip(&slow) {
                assert_eq!(f.0, s.0);
            }
        }
    }

    #[test]
    fn k_nearest_matches_brute_force() {
        let net = city();
        let idx = SpatialIndex::build(&net, 200.0);
        let p = Point::new(450.0, 620.0);
        let fast = idx.k_nearest(&net, p, 10, 5_000.0);
        let slow = brute_within(&net, p, f64::INFINITY);
        assert_eq!(fast.len(), 10);
        for (i, (s, d)) in fast.iter().enumerate() {
            // Same distances as the brute-force ranking.
            assert!(
                (d - slow[i].1).abs() < 1e-9,
                "rank {i}: {s:?} {d} vs {:?}",
                slow[i]
            );
        }
        // Sorted ascending, equal distances ordered by segment id.
        for w in fast.windows(2) {
            assert!(w[0].1 < w[1].1 || (w[0].1 == w[1].1 && w[0].0 < w[1].0));
        }
    }

    #[test]
    fn k_nearest_breaks_ties_by_segment_id() {
        use crate::builder::NetworkBuilder;
        use crate::graph::RoadClass;
        // Two parallel segments exactly equidistant from the query point.
        let mut b = NetworkBuilder::new();
        let n0 = b.add_node(Point::new(0.0, 10.0));
        let n1 = b.add_node(Point::new(10.0, 10.0));
        let n2 = b.add_node(Point::new(0.0, -10.0));
        let n3 = b.add_node(Point::new(10.0, -10.0));
        let top = b.add_segment(n0, n1, RoadClass::Local).unwrap();
        let bottom = b.add_segment(n2, n3, RoadClass::Local).unwrap();
        let net = b.build().unwrap();
        let idx = SpatialIndex::build(&net, 50.0);
        let hits = idx.k_nearest(&net, Point::new(5.0, 0.0), 2, 1_000.0);
        assert_eq!(hits.len(), 2);
        assert_eq!(hits[0].1, hits[1].1, "query must be equidistant");
        let lo = top.min(bottom);
        let hi = top.max(bottom);
        assert_eq!((hits[0].0, hits[1].0), (lo, hi), "ties must order by id");
    }

    #[test]
    fn into_variants_reuse_buffers_and_match() {
        let net = city();
        let idx = SpatialIndex::build(&net, 200.0);
        let mut buf = Vec::new();
        for (x, y) in [(100.0, 100.0), (800.0, 400.0), (450.0, 620.0)] {
            let p = Point::new(x, y);
            idx.k_nearest_into(&net, p, 8, 5_000.0, &mut buf);
            assert_eq!(buf, idx.k_nearest(&net, p, 8, 5_000.0));
            idx.segments_within_into(&net, p, 300.0, &mut buf);
            assert_eq!(buf, idx.segments_within(&net, p, 300.0));
        }
    }

    #[test]
    fn k_nearest_respects_max_radius() {
        let net = city();
        let idx = SpatialIndex::build(&net, 200.0);
        // Query far outside the city with a tiny radius.
        let p = Point::new(1e6, 1e6);
        assert!(idx.k_nearest(&net, p, 5, 100.0).is_empty());
        assert!(idx.k_nearest(&net, p, 0, 1e9).is_empty());
    }

    #[test]
    fn subset_index_equals_full_index_on_covered_queries() {
        let net = city();
        let full = SpatialIndex::build(&net, 200.0);
        let all: Vec<SegmentId> = net.segment_ids().collect();
        let subset = SpatialIndex::build_subset(&net, 200.0, &all);
        // Identical member set ⇒ identical answers everywhere.
        for (x, y) in [(100.0, 100.0), (450.0, 620.0), (900.0, 500.0)] {
            let p = Point::new(x, y);
            assert_eq!(
                subset.k_nearest(&net, p, 8, 5_000.0),
                full.k_nearest(&net, p, 8, 5_000.0)
            );
        }
        // A strict subset answers radius queries exactly over its members.
        let half: Vec<SegmentId> = all.iter().copied().filter(|s| s.0 % 2 == 0).collect();
        let sub = SpatialIndex::build_subset(&net, 200.0, &half);
        let p = Point::new(450.0, 620.0);
        let mut got = sub.segments_within(&net, p, 400.0);
        got.sort_by_key(|e| e.0);
        let mut want: Vec<_> = brute_within(&net, p, 400.0)
            .into_iter()
            .filter(|(s, _)| s.0 % 2 == 0)
            .collect();
        want.sort_by_key(|e| e.0);
        assert_eq!(got.len(), want.len());
        for (g, w) in got.iter().zip(&want) {
            assert_eq!(g.0, w.0);
        }
    }

    #[test]
    fn query_point_outside_grid_is_clamped() {
        let net = city();
        let idx = SpatialIndex::build(&net, 200.0);
        let p = Point::new(-5_000.0, -5_000.0);
        // Should not panic; a huge radius still reaches the city.
        let hits = idx.segments_within(&net, p, 20_000.0);
        assert_eq!(hits.len(), net.num_segments());
    }
}

#[cfg(test)]
mod prop_tests {
    use super::*;
    use crate::generators::{generate_city, GeneratorConfig};
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(12))]

        /// Grid results always equal brute force for random query points.
        #[test]
        fn grid_equals_brute(seed in 0u64..100, qx in -500.0..2500.0f64, qy in -500.0..2500.0f64, radius in 50.0..800.0f64) {
            let net = generate_city(&GeneratorConfig::small_test(seed));
            let idx = SpatialIndex::build(&net, 180.0);
            let p = Point::new(qx, qy);
            let mut fast: Vec<_> = idx.segments_within(&net, p, radius);
            fast.sort_by_key(|e| e.0);
            let mut slow: Vec<_> = net
                .segment_ids()
                .map(|s| (s, net.distance_to_segment(p, s)))
                .filter(|&(_, d)| d <= radius)
                .collect();
            slow.sort_by_key(|e| e.0);
            prop_assert_eq!(fast.len(), slow.len());
            for (f, s) in fast.iter().zip(&slow) {
                prop_assert_eq!(f.0, s.0);
            }
        }
    }
}
