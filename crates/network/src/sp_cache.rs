//! Shortest-path result cache.
//!
//! The paper notes (Section V-A2) that "the HMM can use a precomputation
//! table to avoid the bottleneck of repeated shortest path searches" \[11\].
//! [`SpCache`] is that table: a memoized node-pair → route map in front of a
//! shortest-path engine (Dijkstra or contraction hierarchy, selected via
//! [`crate::backend::SpBackend`]). Consecutive trajectory points share most
//! candidate pairs with their neighbors, so hit rates during matching are
//! high.

use crate::backend::{SpEngine, SpHandle};
use crate::graph::{NodeId, RoadNetwork, SegmentId};
use crate::shortest_path::{Route, UNREACHABLE};
use std::collections::{BTreeMap, HashMap};
use std::sync::Arc;

#[derive(Clone)]
struct Entry {
    /// The bound the search ran with; a cached miss is only trusted when the
    /// new query's bound does not exceed it.
    bound: f64,
    route: Option<Route>,
}

impl Entry {
    /// The conclusive answer this entry gives for a query bounded by
    /// `max_dist`, or `None` when the entry cannot answer (a cached miss
    /// whose bound was smaller than the query's).
    fn answer(&self, max_dist: f64) -> Option<Option<Route>> {
        match &self.route {
            Some(r) if r.length <= max_dist => Some(Some(r.clone())),
            // Found before but too long for this query's bound.
            Some(_) => Some(None),
            None if self.bound >= max_dist => Some(None),
            None => None,
        }
    }
}

/// Cache counters, split by layer.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SpCacheStats {
    /// Queries answered from the private (per-shard) map.
    pub hits: u64,
    /// Queries answered from the shared warm layer.
    pub warm_hits: u64,
    /// Queries that ran a Dijkstra search.
    pub misses: u64,
}

impl SpCacheStats {
    /// Accumulates `other` into `self` (for cross-shard aggregation).
    pub fn merge(&mut self, other: &SpCacheStats) {
        self.hits += other.hits;
        self.warm_hits += other.warm_hits;
        self.misses += other.misses;
    }
}

/// An immutable node-pair → route table shared read-only between cache
/// shards (one [`SpCache`] per batch worker).
///
/// Every entry must satisfy the cache invariant: `route` is the true
/// shortest route between the pair when one of length ≤ `bound` exists,
/// `None` otherwise. [`WarmLayer::precompute`] guarantees this by running
/// the same Dijkstra engine the caches use; entries inserted by
/// [`SpCache::snapshot`] inherit it from the cache's own searches. Because
/// warm answers equal what a fresh search would return, consulting the warm
/// layer never changes matching output — only its speed.
#[derive(Clone, Default)]
pub struct WarmLayer {
    map: HashMap<(u32, u32), Entry>,
}

impl WarmLayer {
    /// An empty warm layer.
    pub fn new() -> Self {
        WarmLayer::default()
    }

    /// Computes true shortest routes for `pairs` (bounded by `bound`) and
    /// stores them. Pairs are grouped by source so each source runs one
    /// one-to-many search.
    pub fn precompute(
        net: &RoadNetwork,
        pairs: impl IntoIterator<Item = (NodeId, NodeId)>,
        bound: f64,
    ) -> Self {
        Self::precompute_with(net, pairs, bound, &SpHandle::Dijkstra)
    }

    /// [`Self::precompute`] with an explicit shortest-path backend. The
    /// oracle suite pins both backends bitwise-equal, so the backend
    /// changes precompute cost, never the stored answers.
    pub fn precompute_with(
        net: &RoadNetwork,
        pairs: impl IntoIterator<Item = (NodeId, NodeId)>,
        bound: f64,
        sp: &SpHandle,
    ) -> Self {
        // BTreeMap so the precompute order (and hence any shared-state
        // effects inside the engine) is independent of hash seeding.
        let mut by_source: BTreeMap<u32, Vec<NodeId>> = BTreeMap::new();
        for (from, to) in pairs {
            by_source.entry(from.0).or_default().push(to);
        }
        let mut engine = sp.engine(net);
        let mut map = HashMap::new();
        for (from, targets) in by_source {
            let routes = engine.node_to_nodes(net, NodeId(from), &targets, bound);
            for (to, route) in targets.into_iter().zip(routes) {
                map.insert((from, to.0), Entry { bound, route });
            }
        }
        WarmLayer { map }
    }

    /// Unbounded precompute: every stored entry carries the
    /// [`UNREACHABLE`] bound, so it answers conclusively for *any* later
    /// query bound (a warmed miss means the pair is truly disconnected).
    pub fn precompute_conclusive(
        net: &RoadNetwork,
        pairs: impl IntoIterator<Item = (NodeId, NodeId)>,
        sp: &SpHandle,
    ) -> Self {
        Self::precompute_with(net, pairs, UNREACHABLE, sp)
    }

    /// Number of warmed node pairs.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// True when nothing is warmed.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }
}

/// A memoizing shortest-path oracle for one network.
///
/// Lookups consult the private map first, then the optional shared
/// [`WarmLayer`]; only on a miss in both does a Dijkstra search run (its
/// result lands in the private map, keeping the warm layer immutable and
/// safely shareable across threads).
pub struct SpCache {
    engine: SpEngine,
    map: HashMap<(u32, u32), Entry>,
    warm: Option<Arc<WarmLayer>>,
    capacity: usize,
    hits: u64,
    warm_hits: u64,
    misses: u64,
}

impl SpCache {
    /// Creates a cache bounded to `capacity` node pairs. When the capacity
    /// is exceeded the cache is cleared wholesale (matching workloads sweep
    /// through trajectories, so LRU buys little over epoch clearing).
    pub fn new(net: &RoadNetwork, capacity: usize) -> Self {
        Self::with_backend(net, capacity, &SpHandle::Dijkstra)
    }

    /// [`Self::new`] with an explicit shortest-path backend; both
    /// backends return bitwise-identical routes (see `tests/ch_oracle.rs`),
    /// so the choice affects speed only.
    pub fn with_backend(net: &RoadNetwork, capacity: usize, sp: &SpHandle) -> Self {
        SpCache {
            engine: sp.engine(net),
            map: HashMap::new(),
            warm: None,
            capacity: capacity.max(1),
            hits: 0,
            warm_hits: 0,
            misses: 0,
        }
    }

    /// Creates a cache shard backed by a shared read-only warm layer.
    /// Queries the warm layer can answer conclusively never run a search.
    pub fn with_warm_layer(net: &RoadNetwork, capacity: usize, warm: Arc<WarmLayer>) -> Self {
        let mut cache = SpCache::new(net, capacity);
        cache.warm = Some(warm);
        cache
    }

    /// [`Self::with_warm_layer`] with an explicit shortest-path backend.
    pub fn with_warm_layer_backend(
        net: &RoadNetwork,
        capacity: usize,
        warm: Arc<WarmLayer>,
        sp: &SpHandle,
    ) -> Self {
        let mut cache = SpCache::with_backend(net, capacity, sp);
        cache.warm = Some(warm);
        cache
    }

    /// Copies the private map into a standalone [`WarmLayer`] (e.g. to seed
    /// batch workers from a serial warmup pass). The shard's own warm layer
    /// is not included.
    pub fn snapshot(&self) -> WarmLayer {
        WarmLayer {
            map: self.map.clone(),
        }
    }

    /// Shortest route from `from` to `to` bounded by `max_dist`, memoized.
    pub fn route(
        &mut self,
        net: &RoadNetwork,
        from: NodeId,
        to: NodeId,
        max_dist: f64,
    ) -> Option<Route> {
        let key = (from.0, to.0);
        if let Some(answer) = self.map.get(&key).and_then(|e| e.answer(max_dist)) {
            self.hits += 1;
            return answer;
        }
        if let Some(warm) = &self.warm {
            if let Some(answer) = warm.map.get(&key).and_then(|e| e.answer(max_dist)) {
                self.warm_hits += 1;
                return answer;
            }
        }
        self.misses += 1;
        let route = self.engine.node_to_node(net, from, to, max_dist);
        if self.map.len() >= self.capacity {
            self.map.clear();
        }
        self.map.insert(
            key,
            Entry {
                bound: max_dist,
                route: route.clone(),
            },
        );
        route
    }

    /// Route between projection points on two segments (see
    /// [`crate::shortest_path::route_between_projections`]), memoized on the
    /// inter-node portion.
    pub fn route_between_projections(
        &mut self,
        net: &RoadNetwork,
        from_seg: SegmentId,
        t_from: f64,
        to_seg: SegmentId,
        t_to: f64,
        max_dist: f64,
    ) -> Option<Route> {
        if from_seg == to_seg && t_to >= t_from {
            let len = net.segment(from_seg).length * (t_to - t_from);
            return Some(Route {
                segments: vec![from_seg],
                length: len,
            });
        }
        let from = net.segment(from_seg);
        let to = net.segment(to_seg);
        let head = from.length * (1.0 - t_from);
        let tail = to.length * t_to;
        let inner = self.route(net, from.to, to.from, max_dist)?;
        let mut segments = Vec::with_capacity(inner.segments.len() + 2);
        segments.push(from_seg);
        segments.extend_from_slice(&inner.segments);
        segments.push(to_seg);
        Some(Route {
            segments,
            length: head + inner.length + tail,
        })
    }

    /// `(hits, misses)` counters for diagnostics and benches; warm-layer
    /// hits count as hits.
    pub fn stats(&self) -> (u64, u64) {
        (self.hits + self.warm_hits, self.misses)
    }

    /// Counters split by layer (private hits vs warm hits vs searches).
    pub fn detailed_stats(&self) -> SpCacheStats {
        SpCacheStats {
            hits: self.hits,
            warm_hits: self.warm_hits,
            misses: self.misses,
        }
    }

    /// Number of cached node pairs.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// True when nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Drops all cached entries (e.g. between datasets).
    pub fn clear(&mut self) {
        self.map.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::{generate_city, GeneratorConfig};
    use crate::shortest_path::DijkstraEngine;

    #[test]
    fn cache_returns_same_routes_as_engine() {
        let net = generate_city(&GeneratorConfig::small_test(9));
        let mut cache = SpCache::new(&net, 1000);
        let mut eng = DijkstraEngine::new(&net);
        for i in 0..20u32 {
            let from = NodeId(i % net.num_nodes() as u32);
            let to = NodeId((i * 7 + 3) % net.num_nodes() as u32);
            let cached = cache.route(&net, from, to, 1e9);
            let direct = eng.node_to_node(&net, from, to, 1e9);
            assert_eq!(
                cached.as_ref().map(|r| r.length),
                direct.as_ref().map(|r| r.length),
                "{from:?} -> {to:?}"
            );
        }
    }

    #[test]
    fn repeated_queries_hit() {
        let net = generate_city(&GeneratorConfig::small_test(9));
        let mut cache = SpCache::new(&net, 1000);
        cache.route(&net, NodeId(0), NodeId(5), 1e9);
        cache.route(&net, NodeId(0), NodeId(5), 1e9);
        cache.route(&net, NodeId(0), NodeId(5), 1e9);
        let (hits, misses) = cache.stats();
        assert_eq!(misses, 1);
        assert_eq!(hits, 2);
    }

    #[test]
    fn tighter_bound_on_cached_route_misses_correctly() {
        let net = generate_city(&GeneratorConfig::small_test(9));
        let mut cache = SpCache::new(&net, 1000);
        let r = cache.route(&net, NodeId(0), NodeId(30), 1e9).unwrap();
        // Ask again with a bound below the found length: must answer None
        // without recomputing.
        let again = cache.route(&net, NodeId(0), NodeId(30), r.length * 0.5);
        assert!(again.is_none());
        let (hits, misses) = cache.stats();
        assert_eq!((hits, misses), (1, 1));
    }

    #[test]
    fn miss_with_larger_bound_recomputes() {
        let net = generate_city(&GeneratorConfig::small_test(9));
        let mut cache = SpCache::new(&net, 1000);
        // Tiny bound: miss.
        assert!(cache.route(&net, NodeId(0), NodeId(30), 1.0).is_none());
        // Large bound must recompute and succeed.
        assert!(cache.route(&net, NodeId(0), NodeId(30), 1e9).is_some());
    }

    #[test]
    fn capacity_clears_instead_of_growing() {
        let net = generate_city(&GeneratorConfig::small_test(9));
        let mut cache = SpCache::new(&net, 4);
        for i in 0..20u32 {
            cache.route(&net, NodeId(0), NodeId(i + 1), 1e9);
        }
        assert!(cache.len() <= 4);
    }

    #[test]
    fn warm_layer_answers_without_searching() {
        let net = generate_city(&GeneratorConfig::small_test(9));
        let pairs: Vec<(NodeId, NodeId)> =
            (0..10u32).map(|i| (NodeId(i), NodeId(i + 20))).collect();
        let warm = Arc::new(WarmLayer::precompute(&net, pairs.clone(), 1e12));
        assert_eq!(warm.len(), 10);
        let mut cache = SpCache::with_warm_layer(&net, 1000, warm);
        let mut eng = DijkstraEngine::new(&net);
        for (from, to) in pairs {
            let cached = cache.route(&net, from, to, 1e9);
            let direct = eng.node_to_node(&net, from, to, 1e9);
            assert_eq!(
                cached.as_ref().map(|r| r.length),
                direct.as_ref().map(|r| r.length)
            );
        }
        let s = cache.detailed_stats();
        assert_eq!(s.warm_hits, 10);
        assert_eq!(s.misses, 0);
        // Unwarmed pairs still fall through to a search.
        cache.route(&net, NodeId(15), NodeId(3), 1e9);
        assert_eq!(cache.detailed_stats().misses, 1);
    }

    #[test]
    fn snapshot_seeds_a_fresh_shard() {
        let net = generate_city(&GeneratorConfig::small_test(9));
        let mut warmup = SpCache::new(&net, 1000);
        for i in 0..8u32 {
            warmup.route(&net, NodeId(i), NodeId(i + 11), 1e9);
        }
        let warm = Arc::new(warmup.snapshot());
        assert_eq!(warm.len(), 8);
        let mut shard = SpCache::with_warm_layer(&net, 1000, warm);
        for i in 0..8u32 {
            shard.route(&net, NodeId(i), NodeId(i + 11), 1e9);
        }
        let s = shard.detailed_stats();
        assert_eq!((s.warm_hits, s.misses), (8, 0));
        assert!(shard.is_empty(), "warm hits must not copy into the shard");
    }

    #[test]
    fn cache_hits_equal_recomputation_at_every_bound() {
        // Regression for the shared UNREACHABLE sentinel: a cached answer
        // (hit, warm hit, or conclusive miss) must be byte-identical to
        // what a fresh engine computes, for bounds below, at, and above
        // the route length — and for truly disconnected pairs warmed at
        // the unbounded sentinel. Exercises both backends.
        use crate::backend::{SpBackend, SpHandle};
        let net = generate_city(&GeneratorConfig::small_test(31));
        let n = net.num_nodes() as u32;
        for backend in [SpBackend::Dijkstra, SpBackend::Ch] {
            let sp = SpHandle::build(&net, backend);
            let pairs: Vec<(NodeId, NodeId)> = (0..n)
                .step_by(5)
                .map(|i| (NodeId(i), NodeId((i * 3 + 7) % n)))
                .filter(|(a, b)| a != b)
                .collect();
            let warm = Arc::new(WarmLayer::precompute_conclusive(&net, pairs.clone(), &sp));
            let mut cache = SpCache::with_warm_layer_backend(&net, 10_000, warm, &sp);
            for &(from, to) in &pairs {
                let probe = cache.route(&net, from, to, UNREACHABLE);
                let bounds: Vec<f64> = match &probe {
                    Some(r) => vec![r.length.next_down(), r.length, r.length * 2.0, UNREACHABLE],
                    None => vec![100.0, 1e9, UNREACHABLE],
                };
                for bound in bounds {
                    let cached = cache.route(&net, from, to, bound);
                    let fresh = sp.engine(&net).node_to_node(&net, from, to, bound);
                    assert_eq!(
                        cached.as_ref().map(|r| (r.length.to_bits(), r.segments.clone())),
                        fresh.as_ref().map(|r| (r.length.to_bits(), r.segments.clone())),
                        "{backend:?} {from:?}->{to:?} bound {bound}"
                    );
                }
            }
            // Every query above was answerable from the warm layer or the
            // probe's private insert: conclusive-bound entries never force
            // a recompute.
            let s = cache.detailed_stats();
            assert_eq!(s.misses, 0, "{backend:?}: conclusive warm entries recomputed");
        }
    }

    #[test]
    fn stats_merge_accumulates() {
        let mut a = SpCacheStats { hits: 1, warm_hits: 2, misses: 3 };
        let b = SpCacheStats { hits: 10, warm_hits: 20, misses: 30 };
        a.merge(&b);
        assert_eq!(a, SpCacheStats { hits: 11, warm_hits: 22, misses: 33 });
    }
}

#[cfg(test)]
mod prop_tests {
    use super::*;
    use crate::generators::{generate_city, GeneratorConfig};
    use crate::shortest_path::DijkstraEngine;
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        /// Bound semantics: a cached miss under bound `b` must never mask a
        /// route shorter than `b` — any query sequence with varying bounds
        /// returns exactly what a fresh engine returns.
        #[test]
        fn cached_misses_never_mask_short_routes(
            seed in 0u64..200,
            bounds in proptest::collection::vec(50.0..4_000.0f64, 4..12),
        ) {
            let net = generate_city(&GeneratorConfig::small_test(seed));
            let n = net.num_nodes() as u32;
            let mut cache = SpCache::new(&net, 100_000);
            let mut eng = DijkstraEngine::new(&net);
            // Hammer a few fixed pairs with shrinking/growing bounds so
            // cached misses and cached routes both get re-queried.
            for (q, &bound) in bounds.iter().enumerate() {
                let from = NodeId((seed as u32 + q as u32) % n);
                let to = NodeId((seed as u32 * 7 + 3) % n);
                let cached = cache.route(&net, from, to, bound);
                let direct = eng.node_to_node(&net, from, to, bound);
                prop_assert_eq!(
                    cached.as_ref().map(|r| r.length),
                    direct.as_ref().map(|r| r.length),
                    "pair {:?}->{:?} bound {}", from, to, bound
                );
                if let Some(r) = &cached {
                    prop_assert!(r.length <= bound);
                }
            }
        }

        /// Sharded caches over a shared warm layer agree with a fresh
        /// engine on every query, regardless of which shard answers.
        #[test]
        fn shards_with_warm_layer_agree_with_engine(
            seed in 0u64..200,
            queries in proptest::collection::vec((0u32..60, 0u32..60, 100.0..5_000.0f64), 1..20),
        ) {
            let net = generate_city(&GeneratorConfig::small_test(seed));
            let n = net.num_nodes() as u32;
            // Warm the first few pairs of the query stream.
            let warm_pairs: Vec<(NodeId, NodeId)> = queries
                .iter()
                .take(5)
                .map(|&(f, t, _)| (NodeId(f % n), NodeId(t % n)))
                .collect();
            let warm = Arc::new(WarmLayer::precompute(&net, warm_pairs, 1e12));
            let mut shards = [
                SpCache::with_warm_layer(&net, 100_000, Arc::clone(&warm)),
                SpCache::with_warm_layer(&net, 100_000, Arc::clone(&warm)),
                SpCache::with_warm_layer(&net, 100_000, warm),
            ];
            let mut eng = DijkstraEngine::new(&net);
            for (q, &(f, t, bound)) in queries.iter().enumerate() {
                let from = NodeId(f % n);
                let to = NodeId(t % n);
                let shard = &mut shards[q % 3];
                let cached = shard.route(&net, from, to, bound);
                let direct = eng.node_to_node(&net, from, to, bound);
                prop_assert_eq!(
                    cached.as_ref().map(|r| r.length),
                    direct.as_ref().map(|r| r.length),
                    "shard {} pair {:?}->{:?} bound {}", q % 3, from, to, bound
                );
            }
        }
    }
}
