//! Shortest-path result cache.
//!
//! The paper notes (Section V-A2) that "the HMM can use a precomputation
//! table to avoid the bottleneck of repeated shortest path searches" [11].
//! [`SpCache`] is that table: a memoized node-pair → route map in front of a
//! [`DijkstraEngine`]. Consecutive trajectory points share most candidate
//! pairs with their neighbors, so hit rates during matching are high.

use crate::graph::{NodeId, RoadNetwork, SegmentId};
use crate::shortest_path::{DijkstraEngine, Route};
use std::collections::HashMap;

#[derive(Clone)]
struct Entry {
    /// The bound the search ran with; a cached miss is only trusted when the
    /// new query's bound does not exceed it.
    bound: f64,
    route: Option<Route>,
}

/// A memoizing shortest-path oracle for one network.
pub struct SpCache {
    engine: DijkstraEngine,
    map: HashMap<(u32, u32), Entry>,
    capacity: usize,
    hits: u64,
    misses: u64,
}

impl SpCache {
    /// Creates a cache bounded to `capacity` node pairs. When the capacity
    /// is exceeded the cache is cleared wholesale (matching workloads sweep
    /// through trajectories, so LRU buys little over epoch clearing).
    pub fn new(net: &RoadNetwork, capacity: usize) -> Self {
        SpCache {
            engine: DijkstraEngine::new(net),
            map: HashMap::new(),
            capacity: capacity.max(1),
            hits: 0,
            misses: 0,
        }
    }

    /// Shortest route from `from` to `to` bounded by `max_dist`, memoized.
    pub fn route(
        &mut self,
        net: &RoadNetwork,
        from: NodeId,
        to: NodeId,
        max_dist: f64,
    ) -> Option<Route> {
        let key = (from.0, to.0);
        if let Some(e) = self.map.get(&key) {
            match &e.route {
                Some(r) if r.length <= max_dist => {
                    self.hits += 1;
                    return Some(r.clone());
                }
                Some(_) => {
                    // Found before but too long for this query's bound.
                    self.hits += 1;
                    return None;
                }
                None if e.bound >= max_dist => {
                    self.hits += 1;
                    return None;
                }
                None => { /* previous miss had a smaller bound; recompute */ }
            }
        }
        self.misses += 1;
        let route = self.engine.node_to_node(net, from, to, max_dist);
        if self.map.len() >= self.capacity {
            self.map.clear();
        }
        self.map.insert(
            key,
            Entry {
                bound: max_dist,
                route: route.clone(),
            },
        );
        route
    }

    /// Route between projection points on two segments (see
    /// [`crate::shortest_path::route_between_projections`]), memoized on the
    /// inter-node portion.
    pub fn route_between_projections(
        &mut self,
        net: &RoadNetwork,
        from_seg: SegmentId,
        t_from: f64,
        to_seg: SegmentId,
        t_to: f64,
        max_dist: f64,
    ) -> Option<Route> {
        if from_seg == to_seg && t_to >= t_from {
            let len = net.segment(from_seg).length * (t_to - t_from);
            return Some(Route {
                segments: vec![from_seg],
                length: len,
            });
        }
        let from = net.segment(from_seg);
        let to = net.segment(to_seg);
        let head = from.length * (1.0 - t_from);
        let tail = to.length * t_to;
        let inner = self.route(net, from.to, to.from, max_dist)?;
        let mut segments = Vec::with_capacity(inner.segments.len() + 2);
        segments.push(from_seg);
        segments.extend_from_slice(&inner.segments);
        segments.push(to_seg);
        Some(Route {
            segments,
            length: head + inner.length + tail,
        })
    }

    /// `(hits, misses)` counters for diagnostics and benches.
    pub fn stats(&self) -> (u64, u64) {
        (self.hits, self.misses)
    }

    /// Number of cached node pairs.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// True when nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Drops all cached entries (e.g. between datasets).
    pub fn clear(&mut self) {
        self.map.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::{generate_city, GeneratorConfig};

    #[test]
    fn cache_returns_same_routes_as_engine() {
        let net = generate_city(&GeneratorConfig::small_test(9));
        let mut cache = SpCache::new(&net, 1000);
        let mut eng = DijkstraEngine::new(&net);
        for i in 0..20u32 {
            let from = NodeId(i % net.num_nodes() as u32);
            let to = NodeId((i * 7 + 3) % net.num_nodes() as u32);
            let cached = cache.route(&net, from, to, 1e9);
            let direct = eng.node_to_node(&net, from, to, 1e9);
            assert_eq!(
                cached.as_ref().map(|r| r.length),
                direct.as_ref().map(|r| r.length),
                "{from:?} -> {to:?}"
            );
        }
    }

    #[test]
    fn repeated_queries_hit() {
        let net = generate_city(&GeneratorConfig::small_test(9));
        let mut cache = SpCache::new(&net, 1000);
        cache.route(&net, NodeId(0), NodeId(5), 1e9);
        cache.route(&net, NodeId(0), NodeId(5), 1e9);
        cache.route(&net, NodeId(0), NodeId(5), 1e9);
        let (hits, misses) = cache.stats();
        assert_eq!(misses, 1);
        assert_eq!(hits, 2);
    }

    #[test]
    fn tighter_bound_on_cached_route_misses_correctly() {
        let net = generate_city(&GeneratorConfig::small_test(9));
        let mut cache = SpCache::new(&net, 1000);
        let r = cache.route(&net, NodeId(0), NodeId(30), 1e9).unwrap();
        // Ask again with a bound below the found length: must answer None
        // without recomputing.
        let again = cache.route(&net, NodeId(0), NodeId(30), r.length * 0.5);
        assert!(again.is_none());
        let (hits, misses) = cache.stats();
        assert_eq!((hits, misses), (1, 1));
    }

    #[test]
    fn miss_with_larger_bound_recomputes() {
        let net = generate_city(&GeneratorConfig::small_test(9));
        let mut cache = SpCache::new(&net, 1000);
        // Tiny bound: miss.
        assert!(cache.route(&net, NodeId(0), NodeId(30), 1.0).is_none());
        // Large bound must recompute and succeed.
        assert!(cache.route(&net, NodeId(0), NodeId(30), 1e9).is_some());
    }

    #[test]
    fn capacity_clears_instead_of_growing() {
        let net = generate_city(&GeneratorConfig::small_test(9));
        let mut cache = SpCache::new(&net, 4);
        for i in 0..20u32 {
            cache.route(&net, NodeId(0), NodeId(i + 1), 1e9);
        }
        assert!(cache.len() <= 4);
    }
}
