//! Synthetic city generators.
//!
//! The paper's road networks (Hangzhou: 92,913 segments / 67,330
//! intersections; Xiamen: 64,828 / 37,591) are proprietary map extracts. The
//! generator below produces networks with the same *texture*: a jittered
//! block grid, arterial through-roads every few blocks, diagonal shortcuts,
//! and a density gradient where the street grid thins out with distance from
//! the center (the "rural fringe" exercised by the paper's Fig. 7a).

use crate::builder::NetworkBuilder;
use crate::graph::{NodeId, RoadClass, RoadNetwork};
use lhmm_geo::Point;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Parameters for [`generate_city`].
#[derive(Clone, Debug)]
pub struct GeneratorConfig {
    /// Number of grid rows (north-south blocks + 1).
    pub rows: usize,
    /// Number of grid columns.
    pub cols: usize,
    /// Block spacing in meters.
    pub spacing: f64,
    /// Node jitter as a fraction of spacing (0 = perfect grid).
    pub jitter: f64,
    /// Base probability of deleting a (two-way) grid edge in the city core.
    pub removal_prob: f64,
    /// Additional removal probability at the map fringe; interpolated by
    /// distance from center (models sparse rural road networks).
    pub fringe_removal_prob: f64,
    /// Every `arterial_every`-th row/column becomes an arterial (never
    /// removed). 0 disables arterials.
    pub arterial_every: usize,
    /// Probability of adding a diagonal shortcut across a block.
    pub diagonal_prob: f64,
    /// RNG seed.
    pub seed: u64,
}

impl GeneratorConfig {
    /// A tiny city for unit tests: ~8x8 blocks, deterministic for a seed.
    pub fn small_test(seed: u64) -> Self {
        GeneratorConfig {
            rows: 8,
            cols: 8,
            spacing: 200.0,
            jitter: 0.15,
            removal_prob: 0.08,
            fringe_removal_prob: 0.25,
            arterial_every: 4,
            diagonal_prob: 0.05,
            seed,
        }
    }

    /// A Hangzhou-textured city; `scale` in `(0, 1]` shrinks the grid
    /// dimensions (scale 1.0 ≈ 90k+ directed segments as in Table I).
    pub fn hangzhou_like(scale: f64, seed: u64) -> Self {
        let side = ((150.0 * scale.sqrt()).round() as usize).max(6);
        GeneratorConfig {
            rows: side,
            cols: side,
            spacing: 180.0,
            jitter: 0.18,
            removal_prob: 0.10,
            fringe_removal_prob: 0.45,
            arterial_every: 5,
            diagonal_prob: 0.06,
            seed,
        }
    }

    /// A Xiamen-textured city (smaller, slightly denser blocks).
    pub fn xiamen_like(scale: f64, seed: u64) -> Self {
        let side = ((125.0 * scale.sqrt()).round() as usize).max(6);
        GeneratorConfig {
            rows: side,
            cols: side,
            spacing: 165.0,
            jitter: 0.15,
            removal_prob: 0.09,
            fringe_removal_prob: 0.40,
            arterial_every: 4,
            diagonal_prob: 0.05,
            seed,
        }
    }
}

/// Generates a synthetic city network. Panics on degenerate configs
/// (fewer than 2 rows/cols).
pub fn generate_city(cfg: &GeneratorConfig) -> RoadNetwork {
    assert!(cfg.rows >= 2 && cfg.cols >= 2, "city must have at least 2x2 nodes");
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let mut b = NetworkBuilder::new();

    let cx = (cfg.cols - 1) as f64 * cfg.spacing * 0.5;
    let cy = (cfg.rows - 1) as f64 * cfg.spacing * 0.5;
    let max_r = (cx * cx + cy * cy).sqrt().max(1.0);

    // Place jittered grid nodes.
    let mut ids: Vec<NodeId> = Vec::with_capacity(cfg.rows * cfg.cols);
    for r in 0..cfg.rows {
        for c in 0..cfg.cols {
            let jx = (rng.gen::<f64>() - 0.5) * 2.0 * cfg.jitter * cfg.spacing;
            let jy = (rng.gen::<f64>() - 0.5) * 2.0 * cfg.jitter * cfg.spacing;
            ids.push(b.add_node(Point::new(
                c as f64 * cfg.spacing + jx,
                r as f64 * cfg.spacing + jy,
            )));
        }
    }

    let idx = |r: usize, c: usize| r * cfg.cols + c;
    let is_arterial_row = |r: usize| cfg.arterial_every > 0 && r.is_multiple_of(cfg.arterial_every);
    let is_arterial_col = |c: usize| cfg.arterial_every > 0 && c.is_multiple_of(cfg.arterial_every);

    // Removal probability grows toward the fringe.
    let removal_at = |r: usize, c: usize, rng: &mut StdRng| -> bool {
        let x = c as f64 * cfg.spacing;
        let y = r as f64 * cfg.spacing;
        let dist = ((x - cx).powi(2) + (y - cy).powi(2)).sqrt() / max_r;
        let p = cfg.removal_prob + (cfg.fringe_removal_prob - cfg.removal_prob) * dist;
        rng.gen::<f64>() < p
    };

    for r in 0..cfg.rows {
        for c in 0..cfg.cols {
            // Eastward edge.
            if c + 1 < cfg.cols {
                let arterial = is_arterial_row(r);
                if arterial || !removal_at(r, c, &mut rng) {
                    let class = if arterial {
                        RoadClass::Arterial
                    } else if rng.gen::<f64>() < 0.3 {
                        RoadClass::Collector
                    } else {
                        RoadClass::Local
                    };
                    // Node ids were minted by this generator, so the
                    // link cannot fail; discard the Result.
                    let _ = b.add_two_way(ids[idx(r, c)], ids[idx(r, c + 1)], class);
                }
            }
            // Northward edge.
            if r + 1 < cfg.rows {
                let arterial = is_arterial_col(c);
                if arterial || !removal_at(r, c, &mut rng) {
                    let class = if arterial {
                        RoadClass::Arterial
                    } else if rng.gen::<f64>() < 0.3 {
                        RoadClass::Collector
                    } else {
                        RoadClass::Local
                    };
                    let _ = b.add_two_way(ids[idx(r, c)], ids[idx(r + 1, c)], class);
                }
            }
            // Diagonal shortcut across the block.
            if r + 1 < cfg.rows && c + 1 < cfg.cols && rng.gen::<f64>() < cfg.diagonal_prob {
                let _ = b.add_two_way(ids[idx(r, c)], ids[idx(r + 1, c + 1)], RoadClass::Local);
            }
        }
    }

    // Degenerate configs (a grid too small to carry any edge) fall back
    // to a minimal two-node road instead of panicking.
    b.build().unwrap_or_else(|_| fallback_city(cfg.spacing.max(1.0)))
}

/// Minimal valid network: two nodes joined by one local road. Used only
/// when a generator config degenerates to an empty grid.
fn fallback_city(spacing: f64) -> RoadNetwork {
    let mut b = NetworkBuilder::new();
    let a = b.add_node(Point::new(0.0, 0.0));
    let c = b.add_node(Point::new(spacing, 0.0));
    let _ = b.add_two_way(a, c, RoadClass::Local);
    match b.build() {
        Ok(net) => net,
        // Two finite nodes and one segment always build.
        Err(_) => unreachable!("fallback network is statically valid"),
    }
}

/// Size of the largest strongly-reachable component from an arbitrary
/// arterial node, as a fraction of all nodes. Used by tests to confirm the
/// generator yields a mostly-connected city.
pub fn connectivity_fraction(net: &RoadNetwork) -> f64 {
    use crate::shortest_path::DijkstraEngine;
    let mut eng = DijkstraEngine::new(net);
    // Start from the node closest to the bbox center.
    let center = net.bbox().center();
    let Some(start) = net.node_ids().min_by(|&a, &b| {
        net.node_pos(a)
            .distance(center)
            .total_cmp(&net.node_pos(b).distance(center))
    }) else {
        return 0.0;
    };
    let reached = eng.reachable_within(net, start, f64::INFINITY).len();
    reached as f64 / net.num_nodes() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        let a = generate_city(&GeneratorConfig::small_test(42));
        let b = generate_city(&GeneratorConfig::small_test(42));
        assert_eq!(a.num_nodes(), b.num_nodes());
        assert_eq!(a.num_segments(), b.num_segments());
        for (sa, sb) in a.segment_ids().zip(b.segment_ids()) {
            assert_eq!(a.segment(sa).from, b.segment(sb).from);
            assert_eq!(a.segment(sa).to, b.segment(sb).to);
        }
    }

    #[test]
    fn different_seeds_differ() {
        let a = generate_city(&GeneratorConfig::small_test(1));
        let b = generate_city(&GeneratorConfig::small_test(2));
        // Jitter makes node positions differ.
        let same = a
            .node_ids()
            .zip(b.node_ids())
            .all(|(x, y)| a.node_pos(x) == b.node_pos(y));
        assert!(!same);
    }

    #[test]
    fn city_is_mostly_connected() {
        for seed in [0, 7, 99] {
            let net = generate_city(&GeneratorConfig::small_test(seed));
            let frac = connectivity_fraction(&net);
            assert!(frac > 0.85, "seed {seed}: connectivity {frac}");
        }
    }

    #[test]
    fn arterials_exist_and_are_never_removed() {
        let net = generate_city(&GeneratorConfig::small_test(3));
        let arterials = net
            .segment_ids()
            .filter(|&s| net.segment(s).class == RoadClass::Arterial)
            .count();
        assert!(arterials > 0);
    }

    #[test]
    fn scaled_config_hits_paper_scale() {
        // At full scale the Hangzhou-like config approaches Table I's 92,913
        // directed segments. We verify the scaling law at a small scale.
        let cfg = GeneratorConfig::hangzhou_like(0.02, 11);
        let net = generate_city(&cfg);
        assert!(net.num_segments() > 1000, "{}", net.num_segments());
        assert!(net.num_nodes() >= 400);
    }

    #[test]
    fn fringe_is_sparser_than_core() {
        let cfg = GeneratorConfig {
            rows: 30,
            cols: 30,
            fringe_removal_prob: 0.6,
            removal_prob: 0.02,
            ..GeneratorConfig::small_test(5)
        };
        let net = generate_city(&cfg);
        let b = net.bbox();
        // Two equal-area square windows: one centered, one in a corner.
        let in_window = |p: lhmm_geo::Point, fx0: f64, fy0: f64| -> bool {
            let x = (p.x - b.min_x) / b.width();
            let y = (p.y - b.min_y) / b.height();
            x >= fx0 && x < fx0 + 0.3 && y >= fy0 && y < fy0 + 0.3
        };
        let mut core = 0usize;
        let mut corner = 0usize;
        for s in net.segment_ids() {
            let m = net.segment_midpoint(s);
            if in_window(m, 0.35, 0.35) {
                core += 1;
            }
            if in_window(m, 0.0, 0.0) {
                corner += 1;
            }
        }
        assert!(core > corner, "core {core} corner {corner}");
    }
}
