//! Geo-tiling: spatial partition of a road network for sharded serving.
//!
//! A [`TileGrid`] splits a network's bounding box into a uniform
//! `cols × rows` lattice of **cores**. Every tower location is assigned to
//! exactly one core by [`TileGrid::assign`] — a pure function of the
//! position (ties on shared core boundaries break toward the smaller tile
//! id), so a router replica fleet agrees on placement without
//! coordination. Each tile additionally owns a **halo**: the core inflated
//! by a fixed margin, wide enough to cover the candidate search radius.
//! Candidate preparation for a position inside the core can then run
//! against the tile's segment subset alone and still return answers
//! byte-identical to the full network index (see
//! [`SpatialIndex::build_subset`]).
//!
//! Two materializations of a tile are provided:
//!
//! * [`TileScope`] — the serving view: the tile's segment set indexed over
//!   the *global* network (shards that share the full graph, the in-process
//!   cluster of `lhmm-serve`).
//! * [`TileNetwork`] — a standalone sub-[`RoadNetwork`] with local↔global
//!   id maps, the deployment unit for shards on separate machines. Segment
//!   geometry and cached lengths are copied bit-for-bit.
//!
//! Shortest-path queries deliberately stay on the full network in the
//! serving stack: adversarial inputs (teleported points, see
//! `lhmm_cellsim::faults`) can legally connect candidates across the whole
//! map, so any geometric truncation of the SP graph would break the
//! byte-equivalence contract. Tiling bounds *candidate preparation*, which
//! is radius-limited by construction.

use crate::graph::{NodeId, RoadNetwork, Segment, SegmentId};
use crate::spatial::SpatialIndex;
use lhmm_geo::{BBox, Point};

/// A uniform `cols × rows` partition of a network's bounding box.
#[derive(Clone, Debug)]
pub struct TileGrid {
    bbox: BBox,
    cols: usize,
    rows: usize,
    halo: f64,
}

impl TileGrid {
    /// Partitions `net`'s bounding box into `cols × rows` tile cores with
    /// a `halo`-meter overlap margin. `halo` must be at least the candidate
    /// search radius for subset candidate queries to stay exact.
    pub fn new(net: &RoadNetwork, cols: usize, rows: usize, halo: f64) -> Self {
        TileGrid {
            bbox: net.bbox(),
            cols: cols.max(1),
            rows: rows.max(1),
            halo: halo.max(0.0),
        }
    }

    /// Number of tiles (`cols × rows`).
    pub fn num_tiles(&self) -> usize {
        self.cols * self.rows
    }

    /// Grid columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Grid rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Halo margin in meters.
    pub fn halo(&self) -> f64 {
        self.halo
    }

    /// The closed core box of tile `tile` (row-major id). Adjacent cores
    /// share their boundary coordinate exactly — both compute it with the
    /// same expression — so boundary points are contained in every touching
    /// core and [`TileGrid::assign`] resolves the tie by id.
    pub fn core(&self, tile: usize) -> BBox {
        let c = tile % self.cols;
        let r = tile / self.cols;
        let w = self.bbox.width() / self.cols as f64;
        let h = self.bbox.height() / self.rows as f64;
        BBox {
            min_x: self.bbox.min_x + c as f64 * w,
            min_y: self.bbox.min_y + r as f64 * h,
            max_x: if c + 1 == self.cols {
                self.bbox.max_x
            } else {
                self.bbox.min_x + (c + 1) as f64 * w
            },
            max_y: if r + 1 == self.rows {
                self.bbox.max_y
            } else {
                self.bbox.min_y + (r + 1) as f64 * h
            },
        }
    }

    /// The core inflated by the halo margin.
    pub fn halo_bbox(&self, tile: usize) -> BBox {
        self.core(tile).inflated(self.halo)
    }

    /// Assigns a position to a tile: the smallest tile id whose closed core
    /// contains `p`; for positions outside the network bounding box, the
    /// core with the smallest distance to `p` (ties again by id). A pure
    /// function of `p` and the grid — no state, no history.
    pub fn assign(&self, p: Point) -> usize {
        for t in 0..self.num_tiles() {
            if self.core(t).contains(p) {
                return t;
            }
        }
        let mut best = 0usize;
        let mut best_d = f64::INFINITY;
        for t in 0..self.num_tiles() {
            let d = self.core(t).distance_to_point(p);
            if d < best_d {
                best_d = d;
                best = t;
            }
        }
        best
    }

    /// The segments of tile `tile`: every segment whose bounding box
    /// intersects the tile's halo box, in ascending id order. Segments near
    /// a boundary appear in several tiles — that overlap is what keeps
    /// core-position candidate queries exact.
    pub fn segments_of(&self, net: &RoadNetwork, tile: usize) -> Vec<SegmentId> {
        let hb = self.halo_bbox(tile);
        net.segment_ids()
            .filter(|&s| {
                BBox::from_segment(net.segment_start(s), net.segment_end(s)).intersects(&hb)
            })
            .collect()
    }
}

/// One tile's serving view over the shared global network: the core box
/// (for the core-or-full routing decision) and a [`SpatialIndex`] over just
/// the tile's segments. Queries from inside the core against this index
/// are byte-identical to the full index whenever the halo covers the query
/// radius.
pub struct TileScope {
    /// Tile id in its [`TileGrid`].
    pub tile: usize,
    /// The tile's core box (closed).
    pub core: BBox,
    /// Subset spatial index over the tile's segments, grid-aligned with
    /// the full index built at the same cell size.
    pub index: SpatialIndex,
    /// The tile's segment ids (ascending).
    pub segments: Vec<SegmentId>,
}

impl TileScope {
    /// Builds the serving view of `tile` with the given index cell size.
    pub fn build(net: &RoadNetwork, grid: &TileGrid, tile: usize, cell_size: f64) -> Self {
        let segments = grid.segments_of(net, tile);
        let index = SpatialIndex::build_subset(net, cell_size, &segments);
        TileScope {
            tile,
            core: grid.core(tile),
            index,
            segments,
        }
    }
}

/// A standalone sub-network extracted for one tile, with id maps back to
/// the global network — the unit a cross-machine shard would load. Node
/// positions, segment lengths and classes are copied bit-for-bit, so any
/// computation confined to the tile is exactly reproducible on the global
/// network through the maps.
pub struct TileNetwork {
    /// The extracted sub-network (local ids).
    pub net: RoadNetwork,
    /// Local segment index → global segment id (ascending).
    pub segments: Vec<SegmentId>,
    /// Local node index → global node id (ascending).
    pub nodes: Vec<NodeId>,
}

impl TileNetwork {
    /// Extracts the sub-network of `tile`. Returns `None` when the tile
    /// contains no segments (an all-water tile on a sparse map).
    pub fn extract(net: &RoadNetwork, grid: &TileGrid, tile: usize) -> Option<Self> {
        let seg_ids = grid.segments_of(net, tile);
        if seg_ids.is_empty() {
            return None;
        }
        // Collect the nodes those segments touch, in ascending global order
        // so local ids are deterministic.
        let mut node_used = vec![false; net.num_nodes()];
        for &s in &seg_ids {
            let seg = net.segment(s);
            node_used[seg.from.idx()] = true;
            node_used[seg.to.idx()] = true;
        }
        let mut nodes = Vec::new();
        let mut local_of = vec![u32::MAX; net.num_nodes()];
        for (gi, used) in node_used.iter().enumerate() {
            if *used {
                local_of[gi] = nodes.len() as u32;
                nodes.push(NodeId(gi as u32));
            }
        }
        let node_pos: Vec<Point> = nodes.iter().map(|&n| net.node_pos(n)).collect();
        let segments_local: Vec<Segment> = seg_ids
            .iter()
            .map(|&s| {
                let seg = net.segment(s);
                Segment {
                    from: NodeId(local_of[seg.from.idx()]),
                    to: NodeId(local_of[seg.to.idx()]),
                    length: seg.length,
                    class: seg.class,
                }
            })
            .collect();
        Some(TileNetwork {
            net: RoadNetwork::from_parts(node_pos, segments_local),
            segments: seg_ids,
            nodes,
        })
    }

    /// Global id of local segment `s`.
    pub fn to_global_segment(&self, s: SegmentId) -> Option<SegmentId> {
        self.segments.get(s.idx()).copied()
    }

    /// Local id of global segment `g`, when the tile contains it.
    pub fn to_local_segment(&self, g: SegmentId) -> Option<SegmentId> {
        self.segments
            .binary_search(&g)
            .ok()
            .map(|i| SegmentId(i as u32))
    }

    /// Global id of local node `n`.
    pub fn to_global_node(&self, n: NodeId) -> Option<NodeId> {
        self.nodes.get(n.idx()).copied()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::{generate_city, GeneratorConfig};

    fn city() -> RoadNetwork {
        generate_city(&GeneratorConfig::small_test(11))
    }

    #[test]
    fn cores_partition_the_bbox_and_share_boundaries_exactly() {
        let net = city();
        let grid = TileGrid::new(&net, 2, 2, 300.0);
        assert_eq!(grid.num_tiles(), 4);
        let bb = net.bbox();
        // Outer frame matches the network bbox exactly.
        assert_eq!(grid.core(0).min_x, bb.min_x);
        assert_eq!(grid.core(1).max_x, bb.max_x);
        assert_eq!(grid.core(0).min_y, bb.min_y);
        assert_eq!(grid.core(2).max_y, bb.max_y);
        // Adjacent cores share their boundary coordinate bit-for-bit.
        assert_eq!(grid.core(0).max_x, grid.core(1).min_x);
        assert_eq!(grid.core(0).max_y, grid.core(2).min_y);
        assert_eq!(grid.core(2).max_x, grid.core(3).min_x);
    }

    #[test]
    fn assignment_is_pure_and_breaks_boundary_ties_by_tile_id() {
        let net = city();
        let grid = TileGrid::new(&net, 2, 2, 300.0);
        // Interior points land in their quadrant.
        let c0 = grid.core(0).center();
        assert_eq!(grid.assign(c0), 0);
        let c3 = grid.core(3).center();
        assert_eq!(grid.assign(c3), 3);
        // A point exactly on the vertical boundary is contained in both
        // core 0 and core 1; the tie goes to the smaller id.
        let x = grid.core(0).max_x;
        let y = grid.core(0).center().y;
        let p = Point::new(x, y);
        assert!(grid.core(0).contains(p) && grid.core(1).contains(p));
        assert_eq!(grid.assign(p), 0);
        // The four-corner point is contained in all four cores.
        let corner = Point::new(grid.core(0).max_x, grid.core(0).max_y);
        assert_eq!(grid.assign(corner), 0);
        // Purity: repeated calls agree.
        for _ in 0..3 {
            assert_eq!(grid.assign(p), 0);
            assert_eq!(grid.assign(corner), 0);
        }
    }

    #[test]
    fn off_map_positions_assign_to_the_nearest_core_deterministically() {
        let net = city();
        let grid = TileGrid::new(&net, 2, 2, 300.0);
        let bb = net.bbox();
        // Far south-west of the map: nearest core is tile 0.
        assert_eq!(grid.assign(Point::new(bb.min_x - 9e5, bb.min_y - 9e5)), 0);
        // Far north-east: nearest core is tile 3.
        assert_eq!(grid.assign(Point::new(bb.max_x + 9e5, bb.max_y + 9e5)), 3);
        // Directly north, equidistant from tiles 2 and 3's shared edge —
        // strictly closer to neither, the `<` scan keeps the first (2).
        let mid_x = (grid.core(2).max_x + grid.core(3).min_x) * 0.5;
        let north = Point::new(mid_x, bb.max_y + 1_000.0);
        let d2 = grid.core(2).distance_to_point(north);
        let d3 = grid.core(3).distance_to_point(north);
        assert_eq!(d2, d3, "construction: equidistant probe");
        assert_eq!(grid.assign(north), 2);
    }

    #[test]
    fn every_segment_lands_in_at_least_one_tile_and_cores_cover_exactly() {
        let net = city();
        let grid = TileGrid::new(&net, 2, 2, 250.0);
        let mut covered = vec![false; net.num_segments()];
        for t in 0..grid.num_tiles() {
            for s in grid.segments_of(&net, t) {
                covered[s.idx()] = true;
            }
        }
        assert!(covered.iter().all(|&c| c), "tile union dropped segments");
        // Zero halo: a segment strictly inside one core appears in exactly
        // that core's tile.
        let tight = TileGrid::new(&net, 2, 2, 0.0);
        let inner = net
            .segment_ids()
            .find(|&s| {
                let sb = BBox::from_segment(net.segment_start(s), net.segment_end(s));
                let core = tight.core(0);
                sb.min_x > core.min_x
                    && sb.max_x < core.max_x
                    && sb.min_y > core.min_y
                    && sb.max_y < core.max_y
            })
            .expect("an interior segment");
        let homes: Vec<usize> = (0..tight.num_tiles())
            .filter(|&t| tight.segments_of(&net, t).contains(&inner))
            .collect();
        assert_eq!(homes, vec![0]);
    }

    #[test]
    fn tile_scope_candidates_match_the_unsharded_index_for_core_positions() {
        let net = city();
        // Halo ≥ the query radius: subset answers must be exact.
        let radius = 600.0;
        let grid = TileGrid::new(&net, 2, 2, radius);
        let full = SpatialIndex::build(&net, 200.0);
        for t in 0..grid.num_tiles() {
            let scope = TileScope::build(&net, &grid, t, 200.0);
            assert_eq!(scope.tile, t);
            let core = grid.core(t);
            // Probe a lattice of in-core positions, including the corners.
            let mut probes = vec![
                Point::new(core.min_x, core.min_y),
                Point::new(core.max_x, core.max_y),
                core.center(),
            ];
            for i in 0..4 {
                for j in 0..4 {
                    probes.push(Point::new(
                        core.min_x + core.width() * (i as f64) / 3.0,
                        core.min_y + core.height() * (j as f64) / 3.0,
                    ));
                }
            }
            for p in probes {
                let got = scope.index.k_nearest(&net, p, 12, radius);
                let want = full.k_nearest(&net, p, 12, radius);
                assert_eq!(got.len(), want.len(), "tile {t} at {p:?}");
                for (g, w) in got.iter().zip(&want) {
                    assert_eq!(g.0, w.0, "tile {t} at {p:?}");
                    assert_eq!(g.1.to_bits(), w.1.to_bits(), "tile {t} at {p:?}");
                }
            }
        }
    }

    #[test]
    fn tile_network_preserves_geometry_bit_for_bit() {
        let net = city();
        let grid = TileGrid::new(&net, 2, 2, 300.0);
        let mut seen_any = false;
        for t in 0..grid.num_tiles() {
            let Some(tn) = TileNetwork::extract(&net, &grid, t) else {
                continue;
            };
            seen_any = true;
            assert_eq!(tn.net.num_segments(), tn.segments.len());
            assert_eq!(tn.net.num_nodes(), tn.nodes.len());
            for local in tn.net.segment_ids() {
                let global = tn.to_global_segment(local).expect("mapped");
                let ls = tn.net.segment(local);
                let gs = net.segment(global);
                assert_eq!(ls.length.to_bits(), gs.length.to_bits());
                assert_eq!(ls.class, gs.class);
                // Endpoint positions match bit-for-bit through the node map.
                let lf = tn.net.node_pos(ls.from);
                let gf = net.node_pos(gs.from);
                assert_eq!(lf.x.to_bits(), gf.x.to_bits());
                assert_eq!(lf.y.to_bits(), gf.y.to_bits());
                assert_eq!(
                    tn.to_global_node(ls.from),
                    Some(gs.from),
                    "node map round trip"
                );
                // And the inverse segment map agrees.
                assert_eq!(tn.to_local_segment(global), Some(local));
            }
        }
        assert!(seen_any, "no tile extracted anything");
        // A segment outside the tile maps to no local id.
        let t0 = TileNetwork::extract(&net, &grid, 0).expect("tile 0");
        if let Some(missing) = net.segment_ids().find(|g| !t0.segments.contains(g)) {
            assert_eq!(t0.to_local_segment(missing), None);
        }
    }
}
