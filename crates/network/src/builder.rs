//! Validated construction of [`RoadNetwork`] instances.

use crate::graph::{NodeId, RoadClass, RoadNetwork, Segment, SegmentId};
use lhmm_geo::Point;
use std::fmt;

/// Errors raised during network construction.
#[derive(Clone, Debug, PartialEq)]
pub enum BuildError {
    /// A segment referenced a node id that was never added.
    UnknownNode(NodeId),
    /// A segment connected a node to itself.
    SelfLoop(NodeId),
    /// A node position was NaN or infinite.
    NonFinitePosition(NodeId),
    /// The finished network would be empty.
    Empty,
}

impl fmt::Display for BuildError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BuildError::UnknownNode(n) => write!(f, "segment references unknown node {n:?}"),
            BuildError::SelfLoop(n) => write!(f, "self-loop at node {n:?}"),
            BuildError::NonFinitePosition(n) => write!(f, "non-finite position for node {n:?}"),
            BuildError::Empty => write!(f, "network has no nodes or no segments"),
        }
    }
}

impl std::error::Error for BuildError {}

/// Incrementally builds a [`RoadNetwork`], validating each piece.
#[derive(Default)]
pub struct NetworkBuilder {
    nodes: Vec<Point>,
    segments: Vec<Segment>,
}

impl NetworkBuilder {
    /// Creates an empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds an intersection and returns its id.
    pub fn add_node(&mut self, pos: Point) -> NodeId {
        let id = NodeId(self.nodes.len() as u32);
        self.nodes.push(pos);
        id
    }

    /// Adds a directed segment; the length is computed from node positions.
    pub fn add_segment(
        &mut self,
        from: NodeId,
        to: NodeId,
        class: RoadClass,
    ) -> Result<SegmentId, BuildError> {
        if from.idx() >= self.nodes.len() {
            return Err(BuildError::UnknownNode(from));
        }
        if to.idx() >= self.nodes.len() {
            return Err(BuildError::UnknownNode(to));
        }
        if from == to {
            return Err(BuildError::SelfLoop(from));
        }
        let length = self.nodes[from.idx()].distance(self.nodes[to.idx()]);
        let id = SegmentId(self.segments.len() as u32);
        self.segments.push(Segment {
            from,
            to,
            length,
            class,
        });
        Ok(id)
    }

    /// Adds a bidirectional road (two directed segments) and returns
    /// `(forward, backward)` ids.
    pub fn add_two_way(
        &mut self,
        a: NodeId,
        b: NodeId,
        class: RoadClass,
    ) -> Result<(SegmentId, SegmentId), BuildError> {
        let f = self.add_segment(a, b, class)?;
        let r = self.add_segment(b, a, class)?;
        Ok((f, r))
    }

    /// Number of nodes added so far.
    pub fn num_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// Number of segments added so far.
    pub fn num_segments(&self) -> usize {
        self.segments.len()
    }

    /// Finalizes the network, validating global invariants.
    pub fn build(self) -> Result<RoadNetwork, BuildError> {
        if self.nodes.is_empty() || self.segments.is_empty() {
            return Err(BuildError::Empty);
        }
        for (i, p) in self.nodes.iter().enumerate() {
            if !p.is_finite() {
                return Err(BuildError::NonFinitePosition(NodeId(i as u32)));
            }
        }
        Ok(RoadNetwork::from_parts(self.nodes, self.segments))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rejects_unknown_node() {
        let mut b = NetworkBuilder::new();
        let a = b.add_node(Point::new(0.0, 0.0));
        let err = b.add_segment(a, NodeId(99), RoadClass::Local).unwrap_err();
        assert_eq!(err, BuildError::UnknownNode(NodeId(99)));
    }

    #[test]
    fn rejects_self_loop() {
        let mut b = NetworkBuilder::new();
        let a = b.add_node(Point::new(0.0, 0.0));
        assert_eq!(
            b.add_segment(a, a, RoadClass::Local).unwrap_err(),
            BuildError::SelfLoop(a)
        );
    }

    #[test]
    fn rejects_empty_network() {
        assert_eq!(NetworkBuilder::new().build().unwrap_err(), BuildError::Empty);
        let mut b = NetworkBuilder::new();
        b.add_node(Point::new(0.0, 0.0));
        assert_eq!(b.build().unwrap_err(), BuildError::Empty);
    }

    #[test]
    fn rejects_non_finite_position() {
        let mut b = NetworkBuilder::new();
        let a = b.add_node(Point::new(0.0, 0.0));
        let bad = b.add_node(Point::new(f64::NAN, 0.0));
        b.add_segment(a, bad, RoadClass::Local).unwrap();
        assert!(matches!(
            b.build().unwrap_err(),
            BuildError::NonFinitePosition(_)
        ));
    }

    #[test]
    fn two_way_creates_twins() {
        let mut b = NetworkBuilder::new();
        let a = b.add_node(Point::new(0.0, 0.0));
        let c = b.add_node(Point::new(50.0, 0.0));
        let (f, r) = b.add_two_way(a, c, RoadClass::Collector).unwrap();
        let net = b.build().unwrap();
        assert_eq!(net.segment(f).from, a);
        assert_eq!(net.segment(r).from, c);
        assert_eq!(net.segment(f).length, 50.0);
        assert_eq!(net.segment(r).length, 50.0);
    }

    #[test]
    fn error_display_is_informative() {
        let msg = BuildError::SelfLoop(NodeId(3)).to_string();
        assert!(msg.contains("self-loop"));
    }
}
