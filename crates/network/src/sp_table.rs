//! Precomputed upper-bounded origin–destination routing table (UBODT).
//!
//! The paper notes (§V-A2) that the HMM "can use a precomputation table to
//! avoid the bottleneck of repeated shortest path searches", citing FMM
//! [Yang & Gidófalvi 2018]. This is that structure: for every node, the
//! shortest routes to all nodes within a length bound are computed once;
//! queries then reconstruct any route in O(path length) hash lookups with
//! no search at all.
//!
//! Memory grows with `bound²·density`, so the table suits the matching
//! workload's short-to-medium transitions; longer queries should fall back
//! to [`crate::sp_cache::SpCache`].

use crate::graph::{NodeId, RoadNetwork, SegmentId};
use crate::shortest_path::{DijkstraEngine, Route};
use std::collections::HashMap;

/// One UBODT record: the first hop of the shortest path `source → target`.
#[derive(Clone, Copy, Debug, PartialEq)]
struct Entry {
    /// First segment on the shortest path from the source.
    first_seg: SegmentId,
    /// Total shortest-path length in meters.
    dist: f64,
}

/// The precomputed table.
pub struct SpTable {
    bound: f64,
    entries: HashMap<(u32, u32), Entry>,
}

impl SpTable {
    /// Precomputes routes from every node to all nodes within `bound`
    /// meters. Runs one bounded Dijkstra per node.
    pub fn precompute(net: &RoadNetwork, bound: f64) -> Self {
        assert!(bound > 0.0, "bound must be positive");
        let mut engine = DijkstraEngine::new(net);
        let mut entries = HashMap::new();
        for source in net.node_ids() {
            // Settle all nodes in range, then store each target's first hop
            // by walking the parent chain (the engine reconstructs full
            // routes; we only keep the first segment per target).
            let reached = engine.reachable_within(net, source, bound);
            let targets: Vec<NodeId> =
                reached.iter().map(|&(n, _)| n).filter(|&n| n != source).collect();
            if targets.is_empty() {
                continue;
            }
            let routes = engine.node_to_nodes(net, source, &targets, bound);
            for (t, route) in targets.iter().zip(routes) {
                if let Some(r) = route {
                    if let Some(&first) = r.segments.first() {
                        entries.insert(
                            (source.0, t.0),
                            Entry {
                                first_seg: first,
                                dist: r.length,
                            },
                        );
                    }
                }
            }
        }
        SpTable { bound, entries }
    }

    /// The precomputation bound in meters.
    pub fn bound(&self) -> f64 {
        self.bound
    }

    /// Number of stored origin–destination pairs.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when the table holds no pairs.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Shortest distance from `source` to `target`, when within the bound.
    pub fn distance(&self, source: NodeId, target: NodeId) -> Option<f64> {
        if source == target {
            return Some(0.0);
        }
        self.entries.get(&(source.0, target.0)).map(|e| e.dist)
    }

    /// Reconstructs the shortest route by chaining first-hop records.
    /// Returns `None` when the pair is outside the precomputed bound.
    pub fn route(&self, net: &RoadNetwork, source: NodeId, target: NodeId) -> Option<Route> {
        if source == target {
            return Some(Route {
                segments: Vec::new(),
                length: 0.0,
            });
        }
        let mut segments = Vec::new();
        let mut cur = source;
        let length = self.distance(source, target)?;
        while cur != target {
            let e = self.entries.get(&(cur.0, target.0))?;
            segments.push(e.first_seg);
            cur = net.segment(e.first_seg).to;
        }
        Some(Route { segments, length })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::{generate_city, GeneratorConfig};

    fn city() -> RoadNetwork {
        generate_city(&GeneratorConfig::small_test(19))
    }

    #[test]
    fn table_matches_dijkstra_within_bound() {
        let net = city();
        let bound = 800.0;
        let table = SpTable::precompute(&net, bound);
        assert!(!table.is_empty());
        let mut engine = DijkstraEngine::new(&net);
        let n = net.num_nodes() as u32;
        let mut checked = 0;
        for i in 0..40u32 {
            let s = NodeId((i * 17) % n);
            let t = NodeId((i * 29 + 3) % n);
            let direct = engine.node_to_node(&net, s, t, bound);
            match (table.route(&net, s, t), direct) {
                (Some(tr), Some(dr)) => {
                    assert!((tr.length - dr.length).abs() < 1e-6, "{s:?}->{t:?}");
                    // Route is contiguous and ends at the target.
                    for w in tr.segments.windows(2) {
                        assert_eq!(net.segment(w[0]).to, net.segment(w[1]).from);
                    }
                    if s != t {
                        assert_eq!(net.segment(*tr.segments.last().unwrap()).to, t);
                    }
                    checked += 1;
                }
                (None, None) => {}
                (table_r, direct_r) => panic!(
                    "table/direct disagree for {s:?}->{t:?}: {:?} vs {:?}",
                    table_r.map(|r| r.length),
                    direct_r.map(|r| r.length)
                ),
            }
        }
        assert!(checked > 5, "too few in-bound pairs checked");
    }

    #[test]
    fn self_route_is_empty() {
        let net = city();
        let table = SpTable::precompute(&net, 400.0);
        let r = table.route(&net, NodeId(3), NodeId(3)).unwrap();
        assert!(r.segments.is_empty());
        assert_eq!(r.length, 0.0);
        assert_eq!(table.distance(NodeId(3), NodeId(3)), Some(0.0));
    }

    #[test]
    fn out_of_bound_pairs_are_absent() {
        let net = city();
        // Tiny bound: distant corners must be absent.
        let table = SpTable::precompute(&net, 250.0);
        let far_a = NodeId(0);
        let far_b = NodeId((net.num_nodes() - 1) as u32);
        assert!(table.route(&net, far_a, far_b).is_none());
        assert!(table.distance(far_a, far_b).is_none());
    }

    #[test]
    fn larger_bound_stores_more_pairs() {
        let net = city();
        let small = SpTable::precompute(&net, 300.0);
        let large = SpTable::precompute(&net, 900.0);
        assert!(large.len() > small.len());
        assert_eq!(large.bound(), 900.0);
    }
}
