//! Runtime shortest-path backend selection.
//!
//! Everything downstream of transition scoring — `HmmEngine`, `SpCache`,
//! the batch/streaming/serve engines — consumes shortest paths through
//! the small [`SpEngine`] surface here. The scalar Dijkstra engine
//! remains the oracle; the contraction-hierarchy backend ([`crate::ch`])
//! is pinned bitwise-equal to it by the oracle test suite, so switching
//! backends changes speed, never answers.

use crate::ch::{ChQuery, ContractionHierarchy};
use crate::graph::{NodeId, RoadNetwork};
use crate::shortest_path::{DijkstraEngine, Route};
use std::sync::Arc;

/// Which shortest-path algorithm answers queries.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum SpBackend {
    /// Scalar bounded Dijkstra — the exactness oracle.
    #[default]
    Dijkstra,
    /// Contraction hierarchy: one-time preprocessing, then bidirectional
    /// upward searches. Bitwise-equal to Dijkstra (see `tests/ch_oracle.rs`).
    Ch,
}

/// A cheaply cloneable handle to backend preprocessing artifacts.
///
/// For [`SpBackend::Dijkstra`] this is empty; for [`SpBackend::Ch`] it
/// shares the built hierarchy behind an [`Arc`], so batch workers and
/// serve sessions reuse one preprocessing pass.
#[derive(Clone, Default)]
pub enum SpHandle {
    /// No preprocessing: queries run scalar Dijkstra.
    #[default]
    Dijkstra,
    /// A shared contraction hierarchy.
    Ch(Arc<ContractionHierarchy>),
}

impl std::fmt::Debug for SpHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SpHandle::Dijkstra => write!(f, "SpHandle::Dijkstra"),
            SpHandle::Ch(ch) => {
                let s = ch.stats();
                write!(
                    f,
                    "SpHandle::Ch(nodes={}, base_edges={}, shortcuts={})",
                    s.nodes, s.base_edges, s.shortcuts
                )
            }
        }
    }
}

impl SpHandle {
    /// Runs the preprocessing `backend` requires for `net` (none for
    /// Dijkstra). Deterministic for a given network.
    pub fn build(net: &RoadNetwork, backend: SpBackend) -> Self {
        match backend {
            SpBackend::Dijkstra => SpHandle::Dijkstra,
            SpBackend::Ch => SpHandle::Ch(Arc::new(ContractionHierarchy::build(net))),
        }
    }

    /// The backend this handle answers for.
    pub fn backend(&self) -> SpBackend {
        match self {
            SpHandle::Dijkstra => SpBackend::Dijkstra,
            SpHandle::Ch(_) => SpBackend::Ch,
        }
    }

    /// Shortcut edges added by preprocessing (0 for Dijkstra).
    pub fn shortcut_count(&self) -> u64 {
        match self {
            SpHandle::Dijkstra => 0,
            SpHandle::Ch(ch) => ch.stats().shortcuts as u64,
        }
    }

    /// Creates per-thread mutable query state for this backend.
    pub fn engine(&self, net: &RoadNetwork) -> SpEngine {
        match self {
            SpHandle::Dijkstra => SpEngine::Dijkstra(DijkstraEngine::new(net)),
            SpHandle::Ch(ch) => SpEngine::Ch {
                query: ChQuery::new(ch),
                ch: Arc::clone(ch),
            },
        }
    }
}

/// Mutable per-thread shortest-path query state, one variant per backend.
///
/// Both variants expose the same `node_to_node(s)` contract as
/// [`DijkstraEngine`] and return bitwise-identical answers.
pub enum SpEngine {
    /// Scalar bounded Dijkstra.
    Dijkstra(DijkstraEngine),
    /// Bidirectional upward search over a shared hierarchy.
    Ch {
        /// Reusable epoch-stamped search state.
        query: ChQuery,
        /// The shared preprocessing artifact.
        ch: Arc<ContractionHierarchy>,
    },
}

impl SpEngine {
    /// Shortest route `source → target` within `max_dist` meters.
    pub fn node_to_node(
        &mut self,
        net: &RoadNetwork,
        source: NodeId,
        target: NodeId,
        max_dist: f64,
    ) -> Option<Route> {
        match self {
            SpEngine::Dijkstra(d) => d.node_to_node(net, source, target, max_dist),
            SpEngine::Ch { query, ch } => query.route(ch, net, source, target, max_dist),
        }
    }

    /// One-to-many shortest routes; entry `i` answers `targets[i]`.
    pub fn node_to_nodes(
        &mut self,
        net: &RoadNetwork,
        source: NodeId,
        targets: &[NodeId],
        max_dist: f64,
    ) -> Vec<Option<Route>> {
        match self {
            SpEngine::Dijkstra(d) => d.node_to_nodes(net, source, targets, max_dist),
            SpEngine::Ch { query, ch } => query.node_to_nodes(ch, net, source, targets, max_dist),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::{generate_city, GeneratorConfig};

    #[test]
    fn handle_reports_backend_and_shortcuts() {
        let net = generate_city(&GeneratorConfig::small_test(7));
        let d = SpHandle::build(&net, SpBackend::Dijkstra);
        assert_eq!(d.backend(), SpBackend::Dijkstra);
        assert_eq!(d.shortcut_count(), 0);
        let c = SpHandle::build(&net, SpBackend::Ch);
        assert_eq!(c.backend(), SpBackend::Ch);
        assert!(c.shortcut_count() > 0);
        // Clones share the hierarchy, not rebuild it.
        let c2 = c.clone();
        assert_eq!(c2.shortcut_count(), c.shortcut_count());
    }

    #[test]
    fn engines_agree_through_the_common_surface() {
        let net = generate_city(&GeneratorConfig::small_test(11));
        let mut de = SpHandle::build(&net, SpBackend::Dijkstra).engine(&net);
        let mut ce = SpHandle::build(&net, SpBackend::Ch).engine(&net);
        let n = net.num_nodes() as u32;
        for i in 0..24u32 {
            let s = NodeId((i * 13) % n);
            let t = NodeId((i * 31 + 5) % n);
            let a = de.node_to_node(&net, s, t, 1e12);
            let b = ce.node_to_node(&net, s, t, 1e12);
            match (&a, &b) {
                (Some(x), Some(y)) => {
                    assert_eq!(x.length.to_bits(), y.length.to_bits(), "{s:?}->{t:?}");
                    assert_eq!(x.segments, y.segments, "{s:?}->{t:?}");
                }
                (None, None) => {}
                _ => panic!("{s:?}->{t:?}: {a:?} vs {b:?}"),
            }
        }
    }
}
