//! Bounded Dijkstra searches used for transition evaluation and trip
//! generation.
//!
//! The HMM evaluates, for every pair of consecutive candidate road segments,
//! the shortest route between the two projection points. One Dijkstra per
//! *source* candidate answers all targets of the next trajectory point at
//! once ([`DijkstraEngine::node_to_nodes`]); the engine reuses its internal
//! arrays across queries via epoch stamping so no per-query allocation of
//! O(|V|) memory occurs.

use crate::graph::{NodeId, RoadNetwork, SegmentId};
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// A route through the network: the traversed segments and its length in
/// meters (including partial first/last segments when built from
/// projections).
#[derive(Clone, Debug, PartialEq)]
pub struct Route {
    /// Traversed segments in order.
    pub segments: Vec<SegmentId>,
    /// Total length in meters.
    pub length: f64,
}

/// Sentinel distance for "no route": also the bound to pass for an
/// unbounded search. Shared by every shortest-path consumer
/// ([`DijkstraEngine`], [`crate::ch`], [`crate::sp_cache`]) so bound
/// semantics — "a cached miss at bound `b` is conclusive for any query
/// bound `<= b`" — compare against one constant instead of duplicated
/// magic literals. Any finite distance satisfies `d < UNREACHABLE`.
pub const UNREACHABLE: f64 = f64::INFINITY;

#[derive(Copy, Clone, PartialEq)]
struct HeapEntry {
    dist: f64,
    node: NodeId,
}

impl Eq for HeapEntry {}

impl Ord for HeapEntry {
    fn cmp(&self, other: &Self) -> Ordering {
        // Min-heap on distance: reverse the comparison. `total_cmp` gives
        // a total order even if a non-finite distance ever slips in.
        other
            .dist
            .total_cmp(&self.dist)
            .then_with(|| other.node.0.cmp(&self.node.0))
    }
}

impl PartialOrd for HeapEntry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

const NO_PARENT: u32 = u32::MAX;

/// Reusable Dijkstra state for a fixed network.
pub struct DijkstraEngine {
    dist: Vec<f64>,
    parent_seg: Vec<u32>,
    epoch: Vec<u32>,
    current_epoch: u32,
    heap: BinaryHeap<HeapEntry>,
}

impl DijkstraEngine {
    /// Creates an engine sized for `net`.
    pub fn new(net: &RoadNetwork) -> Self {
        let n = net.num_nodes();
        DijkstraEngine {
            dist: vec![UNREACHABLE; n],
            parent_seg: vec![NO_PARENT; n],
            epoch: vec![0; n],
            current_epoch: 0,
            heap: BinaryHeap::new(),
        }
    }

    #[inline]
    fn reset(&mut self) {
        // Epoch stamping: a node's entries are valid only when its epoch
        // matches; wrap-around forces a full clear.
        self.current_epoch = self.current_epoch.wrapping_add(1);
        if self.current_epoch == 0 {
            self.epoch.fill(0);
            self.current_epoch = 1;
        }
        self.heap.clear();
    }

    #[inline]
    fn get_dist(&self, n: NodeId) -> f64 {
        if self.epoch[n.idx()] == self.current_epoch {
            self.dist[n.idx()]
        } else {
            UNREACHABLE
        }
    }

    #[inline]
    fn set(&mut self, n: NodeId, d: f64, parent: u32) {
        self.dist[n.idx()] = d;
        self.parent_seg[n.idx()] = parent;
        self.epoch[n.idx()] = self.current_epoch;
    }

    /// One-to-many shortest paths from `source` to every node in `targets`,
    /// bounded by `max_dist` meters. Entry `i` of the result is `None` when
    /// `targets[i]` is unreachable within the bound.
    ///
    /// Each returned route is the segment sequence from `source` to the
    /// target node with its total length.
    pub fn node_to_nodes(
        &mut self,
        net: &RoadNetwork,
        source: NodeId,
        targets: &[NodeId],
        max_dist: f64,
    ) -> Vec<Option<Route>> {
        self.reset();
        self.set(source, 0.0, NO_PARENT);
        self.heap.push(HeapEntry {
            dist: 0.0,
            node: source,
        });

        let mut remaining: usize = {
            // Count distinct targets not yet settled (duplicates allowed).
            targets.len()
        };
        let mut settled = vec![false; targets.len()];

        while let Some(HeapEntry { dist, node }) = self.heap.pop() {
            if dist > self.get_dist(node) {
                continue; // stale entry
            }
            // Settle any matching targets.
            for (i, &t) in targets.iter().enumerate() {
                if !settled[i] && t == node {
                    settled[i] = true;
                    remaining -= 1;
                }
            }
            if remaining == 0 {
                break;
            }
            if dist > max_dist {
                break;
            }
            for &sid in net.out_segments(node) {
                let seg = net.segment(sid);
                let nd = dist + seg.length;
                if nd < self.get_dist(seg.to) && nd <= max_dist {
                    self.set(seg.to, nd, sid.0);
                    self.heap.push(HeapEntry {
                        dist: nd,
                        node: seg.to,
                    });
                }
            }
        }

        targets
            .iter()
            .map(|&t| {
                let d = self.get_dist(t);
                if d < UNREACHABLE {
                    Some(Route {
                        segments: self.reconstruct(net, t),
                        length: d,
                    })
                } else {
                    None
                }
            })
            .collect()
    }

    /// Single-target convenience wrapper around [`Self::node_to_nodes`].
    pub fn node_to_node(
        &mut self,
        net: &RoadNetwork,
        source: NodeId,
        target: NodeId,
        max_dist: f64,
    ) -> Option<Route> {
        self.node_to_nodes(net, source, &[target], max_dist)
            .pop()
            .flatten()
    }

    /// Distances (no paths) from `source` to all nodes within `max_dist`.
    /// Returns `(node, distance)` pairs in settle order.
    pub fn reachable_within(
        &mut self,
        net: &RoadNetwork,
        source: NodeId,
        max_dist: f64,
    ) -> Vec<(NodeId, f64)> {
        self.reset();
        self.set(source, 0.0, NO_PARENT);
        self.heap.push(HeapEntry {
            dist: 0.0,
            node: source,
        });
        let mut out = Vec::new();
        while let Some(HeapEntry { dist, node }) = self.heap.pop() {
            if dist > self.get_dist(node) {
                continue;
            }
            if dist > max_dist {
                break;
            }
            out.push((node, dist));
            for &sid in net.out_segments(node) {
                let seg = net.segment(sid);
                let nd = dist + seg.length;
                if nd < self.get_dist(seg.to) && nd <= max_dist {
                    self.set(seg.to, nd, sid.0);
                    self.heap.push(HeapEntry {
                        dist: nd,
                        node: seg.to,
                    });
                }
            }
        }
        out
    }

    fn reconstruct(&self, net: &RoadNetwork, target: NodeId) -> Vec<SegmentId> {
        let mut segs = Vec::new();
        let mut cur = target;
        loop {
            let p = self.parent_seg[cur.idx()];
            if self.epoch[cur.idx()] != self.current_epoch || p == NO_PARENT {
                break;
            }
            let sid = SegmentId(p);
            segs.push(sid);
            cur = net.segment(sid).from;
        }
        segs.reverse();
        segs
    }
}

/// Shortest node-to-node route under a caller-supplied segment weight.
///
/// Used by the trip generator to sample *plausible but not strictly shortest*
/// routes (per-trip perturbed weights). Slower than [`DijkstraEngine`]; not
/// for the matching hot path.
pub fn node_to_node_weighted(
    net: &RoadNetwork,
    source: NodeId,
    target: NodeId,
    weight: impl Fn(SegmentId) -> f64,
) -> Option<Route> {
    use std::collections::HashMap;
    let mut dist: HashMap<NodeId, f64> = HashMap::new();
    let mut parent: HashMap<NodeId, SegmentId> = HashMap::new();
    let mut heap = BinaryHeap::new();
    dist.insert(source, 0.0);
    heap.push(HeapEntry {
        dist: 0.0,
        node: source,
    });
    while let Some(HeapEntry { dist: d, node }) = heap.pop() {
        if d > *dist.get(&node).unwrap_or(&UNREACHABLE) {
            continue;
        }
        if node == target {
            break;
        }
        for &sid in net.out_segments(node) {
            let w = weight(sid);
            debug_assert!(w >= 0.0, "segment weights must be non-negative");
            let seg = net.segment(sid);
            let nd = d + w;
            if nd < *dist.get(&seg.to).unwrap_or(&UNREACHABLE) {
                dist.insert(seg.to, nd);
                parent.insert(seg.to, sid);
                heap.push(HeapEntry {
                    dist: nd,
                    node: seg.to,
                });
            }
        }
    }
    if !dist.contains_key(&target) {
        return None;
    }
    let mut segs = Vec::new();
    let mut cur = target;
    while cur != source {
        let sid = *parent.get(&cur)?;
        segs.push(sid);
        cur = net.segment(sid).from;
    }
    segs.reverse();
    let length = segs.iter().map(|&s| net.segment(s).length).sum();
    Some(Route {
        segments: segs,
        length,
    })
}

/// Shortest route between two *projection points* on candidate segments,
/// following the paper's HMM formulation: travel the remainder of `from_seg`
/// after offset `t_from`, the inter-node shortest path, then the onset of
/// `to_seg` up to offset `t_to`.
///
/// `t_from` / `t_to` are normalized positions in `[0, 1]` along the segments.
/// When `from_seg == to_seg` and `t_to >= t_from` the route stays on the
/// segment. Returns `None` when no route exists within `max_dist`.
pub fn route_between_projections(
    net: &RoadNetwork,
    engine: &mut DijkstraEngine,
    from_seg: SegmentId,
    t_from: f64,
    to_seg: SegmentId,
    t_to: f64,
    max_dist: f64,
) -> Option<Route> {
    if from_seg == to_seg && t_to >= t_from {
        let len = net.segment(from_seg).length * (t_to - t_from);
        return Some(Route {
            segments: vec![from_seg],
            length: len,
        });
    }
    let from = net.segment(from_seg);
    let to = net.segment(to_seg);
    let head = from.length * (1.0 - t_from);
    let tail = to.length * t_to;
    let inner = engine.node_to_node(net, from.to, to.from, max_dist)?;
    let mut segments = Vec::with_capacity(inner.segments.len() + 2);
    segments.push(from_seg);
    segments.extend_from_slice(&inner.segments);
    segments.push(to_seg);
    Some(Route {
        segments,
        length: head + inner.length + tail,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::NetworkBuilder;
    use crate::graph::RoadClass;
    use lhmm_geo::Point;

    /// A 3x3 grid with 100 m spacing, all roads two-way.
    fn grid3() -> RoadNetwork {
        let mut b = NetworkBuilder::new();
        let mut ids = Vec::new();
        for y in 0..3 {
            for x in 0..3 {
                ids.push(b.add_node(Point::new(x as f64 * 100.0, y as f64 * 100.0)));
            }
        }
        for y in 0..3 {
            for x in 0..3 {
                let i = y * 3 + x;
                if x + 1 < 3 {
                    b.add_two_way(ids[i], ids[i + 1], RoadClass::Collector).unwrap();
                }
                if y + 1 < 3 {
                    b.add_two_way(ids[i], ids[i + 3], RoadClass::Collector).unwrap();
                }
            }
        }
        b.build().unwrap()
    }

    #[test]
    fn epoch_wraparound_invalidates_stale_entries() {
        // Regression guard: after 2^32 resets `current_epoch` wraps. The
        // reset path must clear the epoch stamps when that happens —
        // otherwise nodes whose stored epoch happens to equal the wrapped
        // counter would expose garbage distances/parents from an ancient
        // query as if they were current.
        let net = grid3();
        let mut fresh = DijkstraEngine::new(&net);
        let expected = fresh
            .node_to_node(&net, NodeId(0), NodeId(8), 10_000.0)
            .unwrap();

        let mut eng = DijkstraEngine::new(&net);
        // Simulate the state just before wrap-around, with poisoned entries
        // that become "valid" after the wrap if the clear is skipped: stale
        // epochs at both u32::MAX (valid right now) and the small values
        // the counter will pass through next.
        eng.current_epoch = u32::MAX;
        for i in 0..eng.epoch.len() {
            eng.epoch[i] = if i % 2 == 0 { u32::MAX } else { (i % 4) as u32 };
            eng.dist[i] = 0.25; // absurdly short: would hijack any search
            eng.parent_seg[i] = NO_PARENT;
        }
        // Several queries straddling the wrap (epochs MAX → 1 → 2 → 3): all
        // must ignore the poisoned state and reproduce the fresh result.
        for round in 0..3 {
            let r = eng
                .node_to_node(&net, NodeId(0), NodeId(8), 10_000.0)
                .unwrap();
            assert_eq!(r.length, expected.length, "round {round}");
            assert_eq!(r.segments, expected.segments, "round {round}");
        }
        assert!(eng.current_epoch >= 1 && eng.current_epoch < u32::MAX);
    }

    #[test]
    fn diagonal_distance_on_grid() {
        let net = grid3();
        let mut eng = DijkstraEngine::new(&net);
        let r = eng
            .node_to_node(&net, NodeId(0), NodeId(8), 10_000.0)
            .unwrap();
        assert_eq!(r.length, 400.0);
        assert_eq!(r.segments.len(), 4);
        // Route is contiguous.
        for w in r.segments.windows(2) {
            assert_eq!(net.segment(w[0]).to, net.segment(w[1]).from);
        }
        assert_eq!(net.segment(r.segments[0]).from, NodeId(0));
        assert_eq!(net.segment(*r.segments.last().unwrap()).to, NodeId(8));
    }

    #[test]
    fn unreachable_beyond_bound() {
        let net = grid3();
        let mut eng = DijkstraEngine::new(&net);
        assert!(eng.node_to_node(&net, NodeId(0), NodeId(8), 399.0).is_none());
        assert!(eng.node_to_node(&net, NodeId(0), NodeId(8), 400.0).is_some());
    }

    #[test]
    fn one_to_many_matches_individual_queries() {
        let net = grid3();
        let mut eng = DijkstraEngine::new(&net);
        let targets = [NodeId(2), NodeId(4), NodeId(8), NodeId(0)];
        let batch = eng.node_to_nodes(&net, NodeId(0), &targets, 10_000.0);
        let mut eng2 = DijkstraEngine::new(&net);
        for (i, &t) in targets.iter().enumerate() {
            let single = eng2.node_to_node(&net, NodeId(0), t, 10_000.0);
            assert_eq!(
                batch[i].as_ref().map(|r| r.length),
                single.map(|r| r.length)
            );
        }
        assert_eq!(batch[3].as_ref().unwrap().length, 0.0);
    }

    #[test]
    fn engine_reuse_is_correct_across_queries() {
        let net = grid3();
        let mut eng = DijkstraEngine::new(&net);
        let a = eng.node_to_node(&net, NodeId(0), NodeId(8), 1e9).unwrap().length;
        let b = eng.node_to_node(&net, NodeId(8), NodeId(0), 1e9).unwrap().length;
        let a2 = eng.node_to_node(&net, NodeId(0), NodeId(8), 1e9).unwrap().length;
        assert_eq!(a, 400.0);
        assert_eq!(b, 400.0);
        assert_eq!(a, a2);
    }

    #[test]
    fn reachable_within_radius() {
        let net = grid3();
        let mut eng = DijkstraEngine::new(&net);
        let reach = eng.reachable_within(&net, NodeId(4), 100.0);
        // Center node + its 4 direct neighbors.
        assert_eq!(reach.len(), 5);
        assert_eq!(reach[0], (NodeId(4), 0.0));
    }

    #[test]
    fn weighted_route_respects_weights() {
        let net = grid3();
        // Make horizontal edges from node 0 very expensive: the route 0 -> 2
        // should detour through the second row.
        let route = node_to_node_weighted(&net, NodeId(0), NodeId(2), |sid| {
            let s = net.segment(sid);
            let horizontal =
                (net.node_pos(s.from).y - net.node_pos(s.to).y).abs() < 1e-9;
            let on_row0 = net.node_pos(s.from).y == 0.0 && net.node_pos(s.to).y == 0.0;
            if horizontal && on_row0 {
                1000.0
            } else {
                s.length
            }
        })
        .unwrap();
        // Real geometric length of the detour is 400 m (up, right, right, down).
        assert_eq!(route.length, 400.0);
        assert_eq!(route.segments.len(), 4);
    }

    #[test]
    fn projection_route_same_segment() {
        let net = grid3();
        let mut eng = DijkstraEngine::new(&net);
        let sid = SegmentId(0);
        let r = route_between_projections(&net, &mut eng, sid, 0.2, sid, 0.7, 1e9).unwrap();
        assert!((r.length - 0.5 * net.segment(sid).length).abs() < 1e-9);
        assert_eq!(r.segments, vec![sid]);
    }

    #[test]
    fn projection_route_backwards_on_same_segment_loops() {
        let net = grid3();
        let mut eng = DijkstraEngine::new(&net);
        let sid = SegmentId(0); // node 0 -> node 1 on the grid
        let r = route_between_projections(&net, &mut eng, sid, 0.8, sid, 0.2, 1e9).unwrap();
        // Must leave the segment and come back: strictly longer than direct.
        assert!(r.length > net.segment(sid).length * 0.2);
        assert!(r.segments.len() > 1);
    }

    #[test]
    fn projection_route_across_segments() {
        let net = grid3();
        let mut eng = DijkstraEngine::new(&net);
        // Segment 0 is node0 -> node1. Find a segment leaving node 1 east.
        let next = *net
            .out_segments(NodeId(1))
            .iter()
            .find(|&&s| net.segment(s).to == NodeId(2))
            .unwrap();
        let r =
            route_between_projections(&net, &mut eng, SegmentId(0), 0.5, next, 0.5, 1e9).unwrap();
        assert!((r.length - 100.0).abs() < 1e-9);
        assert_eq!(r.segments, vec![SegmentId(0), next]);
    }
}

#[cfg(test)]
mod prop_tests {
    use super::*;
    use crate::generators::{GeneratorConfig, generate_city};
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        /// Shortest-path lengths obey the triangle inequality through any
        /// intermediate node.
        #[test]
        fn triangle_inequality(seed in 0u64..1000) {
            let net = generate_city(&GeneratorConfig::small_test(seed));
            let mut eng = DijkstraEngine::new(&net);
            let n = net.num_nodes() as u32;
            let a = NodeId(seed as u32 % n);
            let b = NodeId((seed as u32 * 7 + 3) % n);
            let c = NodeId((seed as u32 * 13 + 5) % n);
            let ab = eng.node_to_node(&net, a, b, 1e12).map(|r| r.length);
            let ac = eng.node_to_node(&net, a, c, 1e12).map(|r| r.length);
            let cb = eng.node_to_node(&net, c, b, 1e12).map(|r| r.length);
            if let (Some(ab), Some(ac), Some(cb)) = (ab, ac, cb) {
                prop_assert!(ab <= ac + cb + 1e-6, "ab={ab} ac={ac} cb={cb}");
            }
        }

        /// Every returned route is contiguous and its stated length matches
        /// the sum of its segment lengths.
        #[test]
        fn route_is_contiguous_and_length_consistent(seed in 0u64..1000) {
            let net = generate_city(&GeneratorConfig::small_test(seed));
            let mut eng = DijkstraEngine::new(&net);
            let n = net.num_nodes() as u32;
            let a = NodeId(seed as u32 % n);
            let b = NodeId((seed as u32 * 31 + 17) % n);
            if let Some(r) = eng.node_to_node(&net, a, b, 1e12) {
                for w in r.segments.windows(2) {
                    prop_assert_eq!(net.segment(w[0]).to, net.segment(w[1]).from);
                }
                let sum: f64 = r.segments.iter().map(|&s| net.segment(s).length).sum();
                prop_assert!((sum - r.length).abs() < 1e-6);
                if a != b {
                    prop_assert_eq!(net.segment(r.segments[0]).from, a);
                    prop_assert_eq!(net.segment(*r.segments.last().unwrap()).to, b);
                }
            }
        }
    }
}
