//! Contraction-hierarchy (CH) shortest-path preprocessing and queries.
//!
//! The HMM's transition scores are built on road-network shortest-path
//! distances (paper §4), and per-stage timing shows those queries dominate
//! inference cost. This module trades a one-time preprocessing pass for
//! much faster queries: nodes are contracted in importance order
//! (edge-difference + deleted-neighbors heuristic, ties broken by node id),
//! shortcut edges preserve all shortest distances among the remaining
//! nodes, and queries run a bidirectional Dijkstra restricted to *upward*
//! edges (toward higher contraction rank) on the overlay graph.
//!
//! # Exactness contract
//!
//! CH is exact in real arithmetic by construction; this implementation is
//! additionally pinned to be **bitwise** interchangeable with
//! [`DijkstraEngine`](crate::shortest_path::DijkstraEngine):
//!
//! * The overlay's base edges are the per-`(from, to)` minimum original
//!   segments, chosen exactly as Dijkstra's strict `<` relaxation chooses
//!   among parallel edges (lowest length, then lowest segment id).
//! * A query never reports the float sum of shortcut weights. It unpacks
//!   the winning up–down path to the original segment sequence and
//!   re-folds the length left-to-right from the source — the identical
//!   sequence of rounded additions Dijkstra performs along its parent
//!   tree. When the shortest path is unique (any jittered generated
//!   city), the unpacked sequence *is* Dijkstra's path, so length and
//!   segments match bit for bit; on exact-arithmetic networks every
//!   tied fold is exact, so lengths still match bit for bit.
//! * The distance bound is applied to the re-folded length only
//!   (`length <= max_dist`). Folds of non-negative addends are monotone
//!   non-decreasing, so this is equivalent to Dijkstra's per-relaxation
//!   `nd <= max_dist` guard.
//!
//! Witness searches during contraction are bounded and settle-capped; a
//! missed witness only inserts a redundant shortcut and can never change
//! a query answer. The oracle suite in `tests/ch_oracle.rs` and
//! `tests/sp_metamorphic.rs` enforces all of the above against the
//! Dijkstra oracle with `total_cmp`-equality, not tolerances.

use crate::graph::{NodeId, RoadNetwork, SegmentId};
use crate::shortest_path::{Route, UNREACHABLE};
use std::cmp::{Ordering, Reverse};
use std::collections::BinaryHeap;

const NO_EDGE: u32 = u32::MAX;
const NO_NODE: u32 = u32::MAX;

/// Search-space prune bound for a query bound `max_dist`.
///
/// Overlay label sums and the re-folded (reported) length of the same path
/// differ only by accumulated rounding — relatively ~`k · 2⁻⁵²` for `k`
/// segments, orders of magnitude below this margin. Labels above the
/// pruned bound therefore belong to paths whose re-folded length is
/// certainly `> max_dist`, which the query would discard anyway; skipping
/// them early cannot change any answer. (`+1e-9` keeps a nonzero margin
/// for `max_dist = 0`; `∞` stays `∞`.)
#[inline]
fn prune_bound(max_dist: f64) -> f64 {
    max_dist * (1.0 + 1e-9) + 1e-9
}

/// Settle cap per witness search. Conservative: capping the search can
/// only miss witnesses, which adds redundant shortcuts — never wrong
/// distances.
const WITNESS_SETTLE_CAP: usize = 96;

/// What one overlay edge represents.
#[derive(Clone, Copy, Debug)]
enum EdgeKind {
    /// An original road segment.
    Original(SegmentId),
    /// A shortcut replacing `left` then `right` (overlay edge ids).
    Shortcut { left: u32, right: u32 },
}

/// One directed overlay edge (original segment or shortcut).
#[derive(Clone, Copy, Debug)]
struct OverlayEdge {
    from: u32,
    to: u32,
    weight: f64,
    kind: EdgeKind,
}

/// Preprocessing statistics, surfaced through `MatchStats` upstream.
#[derive(Clone, Copy, Debug, Default)]
pub struct ChStats {
    /// Nodes in the hierarchy.
    pub nodes: usize,
    /// Base overlay edges (per-pair-minimum original segments).
    pub base_edges: usize,
    /// Shortcut edges inserted during contraction.
    pub shortcuts: usize,
}

/// A built contraction hierarchy over a fixed [`RoadNetwork`].
///
/// Construction is deterministic: identical networks produce identical
/// ranks, shortcuts, and adjacency orderings.
pub struct ContractionHierarchy {
    num_nodes: usize,
    /// Contraction rank per node (higher = contracted later = "more
    /// important").
    rank: Vec<u32>,
    edges: Vec<OverlayEdge>,
    /// Upward out-edges: CSR over edge ids with `rank[from] < rank[to]`,
    /// **keyed by `rank[from]`**. All query-side adjacency and search
    /// state live in rank space: every upward search climbs into the same
    /// few high-rank nodes, so rank-indexed arrays keep the hot working
    /// set contiguous instead of scattered across node ids.
    fwd_offsets: Vec<u32>,
    fwd_edges: Vec<u32>,
    /// Head **rank** and weight of each `fwd_edges` entry, unpacked into
    /// parallel arrays so the hot relaxation/stall loops scan densely
    /// instead of chasing [`OverlayEdge`] structs.
    fwd_to: Vec<u32>,
    fwd_w: Vec<f64>,
    /// Upward in-edges: CSR keyed by `rank[to]`, edge ids with
    /// `rank[from] > rank[to]` (traversed upward by the backward search).
    bwd_offsets: Vec<u32>,
    bwd_edges: Vec<u32>,
    /// Tail **rank** and weight of each `bwd_edges` entry (parallel arrays).
    bwd_from: Vec<u32>,
    bwd_w: Vec<f64>,
    stats: ChStats,
}

/// Min-heap entry ordered by (`total_cmp` distance, node id).
#[derive(Copy, Clone, PartialEq)]
struct ChHeapEntry {
    dist: f64,
    node: u32,
}

impl Eq for ChHeapEntry {}

impl Ord for ChHeapEntry {
    fn cmp(&self, other: &Self) -> Ordering {
        other
            .dist
            .total_cmp(&self.dist)
            .then_with(|| other.node.cmp(&self.node))
    }
}

impl PartialOrd for ChHeapEntry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// Reusable epoch-stamped state for bounded witness searches.
struct WitnessSearch {
    dist: Vec<f64>,
    epoch: Vec<u32>,
    current_epoch: u32,
    heap: BinaryHeap<ChHeapEntry>,
}

impl WitnessSearch {
    fn new(n: usize) -> Self {
        WitnessSearch {
            dist: vec![UNREACHABLE; n],
            epoch: vec![0; n],
            current_epoch: 0,
            heap: BinaryHeap::new(),
        }
    }

    #[inline]
    fn reset(&mut self) {
        self.current_epoch = self.current_epoch.wrapping_add(1);
        if self.current_epoch == 0 {
            self.epoch.fill(0);
            self.current_epoch = 1;
        }
        self.heap.clear();
    }

    #[inline]
    fn get(&self, n: u32) -> f64 {
        if self.epoch[n as usize] == self.current_epoch {
            self.dist[n as usize]
        } else {
            UNREACHABLE
        }
    }

    #[inline]
    fn set(&mut self, n: u32, d: f64) {
        self.dist[n as usize] = d;
        self.epoch[n as usize] = self.current_epoch;
    }

    /// Bounded Dijkstra from `source` on the live (uncontracted) overlay,
    /// never entering `skip`. Tentative labels are upper bounds on the
    /// true distance, so `get(w) <= limit` soundly certifies a witness
    /// even when the settle cap stops the search early.
    fn run(
        &mut self,
        edges: &[OverlayEdge],
        out_adj: &[Vec<u32>],
        contracted: &[bool],
        source: u32,
        skip: u32,
        bound: f64,
    ) {
        self.reset();
        self.set(source, 0.0);
        self.heap.push(ChHeapEntry {
            dist: 0.0,
            node: source,
        });
        let mut settles = 0usize;
        while let Some(ChHeapEntry { dist, node }) = self.heap.pop() {
            if dist > self.get(node) {
                continue;
            }
            if dist > bound {
                break;
            }
            settles += 1;
            if settles > WITNESS_SETTLE_CAP {
                break;
            }
            for &eid in &out_adj[node as usize] {
                let e = edges[eid as usize];
                if contracted[e.to as usize] || e.to == skip {
                    continue;
                }
                let nd = dist + e.weight;
                if nd < self.get(e.to) && nd <= bound {
                    self.set(e.to, nd);
                    self.heap.push(ChHeapEntry {
                        dist: nd,
                        node: e.to,
                    });
                }
            }
        }
    }
}

/// Mutable state used only while building the hierarchy.
struct Builder {
    edges: Vec<OverlayEdge>,
    out_adj: Vec<Vec<u32>>,
    in_adj: Vec<Vec<u32>>,
    contracted: Vec<bool>,
    deleted_neighbors: Vec<u32>,
    /// Hierarchy depth: 1 + max level of contracted neighbors. Steers the
    /// order toward balanced hierarchies (nested-dissection-like) on
    /// grid-shaped networks, where pure edge difference degenerates.
    level: Vec<u32>,
    witness: WitnessSearch,
    /// Scratch: per-contraction deduped (neighbor, weight, edge id) lists.
    ins: Vec<(u32, f64, u32)>,
    outs: Vec<(u32, f64, u32)>,
}

impl Builder {
    fn new(net: &RoadNetwork) -> Self {
        let n = net.num_nodes();
        // Base overlay: the per-(from, to) minimum original segment,
        // ordered exactly as Dijkstra's strict `<` relaxation resolves
        // parallel edges (lowest length wins; equal lengths keep the
        // lowest segment id, which relaxes first in CSR order).
        let mut raw: Vec<(u32, u32, f64, u32)> = Vec::with_capacity(net.num_segments());
        for sid in net.segment_ids() {
            let s = net.segment(sid);
            raw.push((s.from.0, s.to.0, s.length, sid.0));
        }
        raw.sort_by(|a, b| {
            a.0.cmp(&b.0)
                .then_with(|| a.1.cmp(&b.1))
                .then_with(|| a.2.total_cmp(&b.2))
                .then_with(|| a.3.cmp(&b.3))
        });
        raw.dedup_by(|next, kept| next.0 == kept.0 && next.1 == kept.1);

        let mut edges = Vec::with_capacity(raw.len());
        let mut out_adj = vec![Vec::new(); n];
        let mut in_adj = vec![Vec::new(); n];
        for &(from, to, weight, sid) in &raw {
            let eid = edges.len() as u32;
            edges.push(OverlayEdge {
                from,
                to,
                weight,
                kind: EdgeKind::Original(SegmentId(sid)),
            });
            out_adj[from as usize].push(eid);
            in_adj[to as usize].push(eid);
        }
        Builder {
            edges,
            out_adj,
            in_adj,
            contracted: vec![false; n],
            deleted_neighbors: vec![0; n],
            level: vec![0; n],
            witness: WitnessSearch::new(n),
            ins: Vec::new(),
            outs: Vec::new(),
        }
    }

    /// Fills `self.ins` / `self.outs` with the live neighbors of `v`,
    /// deduplicated to the minimum-weight edge per neighbor (ties to the
    /// lowest edge id).
    fn gather_neighbors(&mut self, v: u32) {
        self.ins.clear();
        self.outs.clear();
        for &eid in &self.in_adj[v as usize] {
            let e = self.edges[eid as usize];
            if !self.contracted[e.from as usize] && e.from != v {
                self.ins.push((e.from, e.weight, eid));
            }
        }
        for &eid in &self.out_adj[v as usize] {
            let e = self.edges[eid as usize];
            if !self.contracted[e.to as usize] && e.to != v {
                self.outs.push((e.to, e.weight, eid));
            }
        }
        let by_min = |a: &(u32, f64, u32), b: &(u32, f64, u32)| {
            a.0.cmp(&b.0)
                .then_with(|| a.1.total_cmp(&b.1))
                .then_with(|| a.2.cmp(&b.2))
        };
        self.ins.sort_by(by_min);
        self.ins.dedup_by(|next, kept| next.0 == kept.0);
        self.outs.sort_by(by_min);
        self.outs.dedup_by(|next, kept| next.0 == kept.0);
    }

    /// Counts (and with `insert`, adds) the shortcuts required to remove
    /// `v` while preserving all shortest distances among live nodes.
    fn shortcut_work(&mut self, v: u32, insert: bool) -> usize {
        self.gather_neighbors(v);
        if self.ins.is_empty() || self.outs.is_empty() {
            return 0;
        }
        let max_out = self
            .outs
            .iter()
            .map(|&(_, w, _)| w)
            .fold(0.0f64, f64::max);
        let mut added = 0usize;
        let ins = std::mem::take(&mut self.ins);
        let outs = std::mem::take(&mut self.outs);
        for &(u, w_in, e_in) in &ins {
            self.witness.run(
                &self.edges,
                &self.out_adj,
                &self.contracted,
                u,
                v,
                w_in + max_out,
            );
            for &(w, w_out, e_out) in &outs {
                if w == u {
                    continue;
                }
                let via = w_in + w_out;
                // A witness path u→w avoiding v that is no longer than
                // the path through v makes the shortcut redundant.
                if self.witness.get(w) <= via {
                    continue;
                }
                added += 1;
                if insert {
                    let eid = self.edges.len() as u32;
                    self.edges.push(OverlayEdge {
                        from: u,
                        to: w,
                        weight: via,
                        kind: EdgeKind::Shortcut {
                            left: e_in,
                            right: e_out,
                        },
                    });
                    self.out_adj[u as usize].push(eid);
                    self.in_adj[w as usize].push(eid);
                }
            }
        }
        self.ins = ins;
        self.outs = outs;
        added
    }

    /// Contraction priority of `v`: integer-valued so heap ordering never
    /// depends on float rounding. Lower contracts earlier.
    fn priority(&mut self, v: u32) -> i64 {
        let shortcuts = self.shortcut_work(v, false) as i64;
        let removed = (self.ins.len() + self.outs.len()) as i64;
        2 * (shortcuts - removed)
            + i64::from(self.deleted_neighbors[v as usize])
            + i64::from(self.level[v as usize])
    }

    /// Contracts `v`: inserts its shortcuts, marks it contracted, and
    /// bumps the deleted-neighbors counter of its live neighbors.
    fn contract(&mut self, v: u32) {
        self.shortcut_work(v, true);
        self.contracted[v as usize] = true;
        let mut neighbors: Vec<u32> = self
            .ins
            .iter()
            .map(|&(u, _, _)| u)
            .chain(self.outs.iter().map(|&(w, _, _)| w))
            .collect();
        neighbors.sort_unstable();
        neighbors.dedup();
        let lv = self.level[v as usize] + 1;
        for u in neighbors {
            self.deleted_neighbors[u as usize] += 1;
            self.level[u as usize] = self.level[u as usize].max(lv);
        }
    }
}

impl ContractionHierarchy {
    /// Builds the hierarchy for `net`. Deterministic for a given network.
    pub fn build(net: &RoadNetwork) -> Self {
        let n = net.num_nodes();
        let mut b = Builder::new(net);
        let base_edges = b.edges.len();

        // Lazy-update priority queue: pop the apparent minimum, recompute
        // its priority, and reinsert when it no longer beats the new top.
        // (priority, node id) gives a strict total order, so ties contract
        // the lower node id first.
        let mut heap: BinaryHeap<Reverse<(i64, u32)>> = BinaryHeap::with_capacity(n);
        for v in 0..n as u32 {
            let p = b.priority(v);
            heap.push(Reverse((p, v)));
        }

        let mut rank = vec![0u32; n];
        let mut next_rank = 0u32;
        while let Some(Reverse((_, v))) = heap.pop() {
            if b.contracted[v as usize] {
                continue; // stale duplicate from a lazy reinsert
            }
            let p_now = b.priority(v);
            if let Some(&Reverse(top)) = heap.peek() {
                if (p_now, v) > top {
                    heap.push(Reverse((p_now, v)));
                    continue;
                }
            }
            b.contract(v);
            rank[v as usize] = next_rank;
            next_rank += 1;
        }

        // Upward CSR in both directions, keyed by *rank* (see the struct
        // docs: rank-space keeps the hot top-of-hierarchy entries
        // contiguous). Bucket contents stay in edge-id order (ascending
        // construction order) for determinism.
        let edges = b.edges;
        let mut fwd_counts = vec![0u32; n + 1];
        let mut bwd_counts = vec![0u32; n + 1];
        for e in &edges {
            if rank[e.from as usize] < rank[e.to as usize] {
                fwd_counts[rank[e.from as usize] as usize + 1] += 1;
            } else {
                bwd_counts[rank[e.to as usize] as usize + 1] += 1;
            }
        }
        for i in 0..n {
            fwd_counts[i + 1] += fwd_counts[i];
            bwd_counts[i + 1] += bwd_counts[i];
        }
        let fwd_offsets = fwd_counts;
        let bwd_offsets = bwd_counts;
        let mut fwd_cursor: Vec<u32> = fwd_offsets[..n].to_vec();
        let mut bwd_cursor: Vec<u32> = bwd_offsets[..n].to_vec();
        let mut fwd_edges = vec![NO_EDGE; fwd_offsets[n] as usize];
        let mut bwd_edges = vec![NO_EDGE; bwd_offsets[n] as usize];
        for (eid, e) in edges.iter().enumerate() {
            if rank[e.from as usize] < rank[e.to as usize] {
                let r = rank[e.from as usize] as usize;
                fwd_edges[fwd_cursor[r] as usize] = eid as u32;
                fwd_cursor[r] += 1;
            } else {
                let r = rank[e.to as usize] as usize;
                bwd_edges[bwd_cursor[r] as usize] = eid as u32;
                bwd_cursor[r] += 1;
            }
        }
        debug_assert!(fwd_edges.iter().all(|&e| e != NO_EDGE));
        debug_assert!(bwd_edges.iter().all(|&e| e != NO_EDGE));
        let fwd_to: Vec<u32> = fwd_edges
            .iter()
            .map(|&e| rank[edges[e as usize].to as usize])
            .collect();
        let fwd_w: Vec<f64> = fwd_edges
            .iter()
            .map(|&e| edges[e as usize].weight)
            .collect();
        let bwd_from: Vec<u32> = bwd_edges
            .iter()
            .map(|&e| rank[edges[e as usize].from as usize])
            .collect();
        let bwd_w: Vec<f64> = bwd_edges
            .iter()
            .map(|&e| edges[e as usize].weight)
            .collect();

        let stats = ChStats {
            nodes: n,
            base_edges,
            shortcuts: edges.len() - base_edges,
        };
        ContractionHierarchy {
            num_nodes: n,
            rank,
            edges,
            fwd_offsets,
            fwd_edges,
            fwd_to,
            fwd_w,
            bwd_offsets,
            bwd_edges,
            bwd_from,
            bwd_w,
            stats,
        }
    }

    /// Preprocessing statistics.
    pub fn stats(&self) -> ChStats {
        self.stats
    }

    /// Number of nodes the hierarchy was built for.
    pub fn num_nodes(&self) -> usize {
        self.num_nodes
    }

    /// Contraction rank per node: `rank()[v]` is the position of node `v`
    /// in the contraction order (higher = contracted later = kept in more
    /// searches). A permutation of `0..num_nodes`.
    pub fn rank(&self) -> &[u32] {
        &self.rank
    }

    /// Upward out-adjacency of the node whose contraction rank is `r`.
    #[inline]
    fn fwd_range(&self, r: u32) -> std::ops::Range<usize> {
        self.fwd_offsets[r as usize] as usize..self.fwd_offsets[r as usize + 1] as usize
    }

    /// Upward in-adjacency of the node whose contraction rank is `r`.
    #[inline]
    fn bwd_range(&self, r: u32) -> std::ops::Range<usize> {
        self.bwd_offsets[r as usize] as usize..self.bwd_offsets[r as usize + 1] as usize
    }
}

/// Reusable bidirectional upward-search state for CH queries.
///
/// Mirrors [`DijkstraEngine`](crate::shortest_path::DijkstraEngine)'s
/// epoch-stamped reuse: no per-query O(|V|) allocation, and identical
/// queries return bitwise-identical answers regardless of what ran
/// before.
///
/// All search state is indexed by **contraction rank**, not node id
/// (endpoints are mapped through `ContractionHierarchy::rank` on entry):
/// every query funnels into the same high-rank nodes, so the hot entries
/// of `dist_*`/`epoch_*` sit in a contiguous tail instead of being
/// scattered across the node-id space.
pub struct ChQuery {
    dist_f: Vec<f64>,
    dist_b: Vec<f64>,
    parent_f: Vec<u32>,
    parent_b: Vec<u32>,
    epoch_f: Vec<u32>,
    epoch_b: Vec<u32>,
    current_epoch_f: u32,
    current_epoch_b: u32,
    heap_f: BinaryHeap<ChHeapEntry>,
    heap_b: BinaryHeap<ChHeapEntry>,
    unpack_stack: Vec<u32>,
}

impl ChQuery {
    /// Creates query state sized for `ch`.
    pub fn new(ch: &ContractionHierarchy) -> Self {
        let n = ch.num_nodes;
        ChQuery {
            dist_f: vec![UNREACHABLE; n],
            dist_b: vec![UNREACHABLE; n],
            parent_f: vec![NO_EDGE; n],
            parent_b: vec![NO_EDGE; n],
            epoch_f: vec![0; n],
            epoch_b: vec![0; n],
            current_epoch_f: 0,
            current_epoch_b: 0,
            heap_f: BinaryHeap::new(),
            heap_b: BinaryHeap::new(),
            unpack_stack: Vec::new(),
        }
    }

    #[inline]
    fn reset_f(&mut self) {
        self.current_epoch_f = self.current_epoch_f.wrapping_add(1);
        if self.current_epoch_f == 0 {
            self.epoch_f.fill(0);
            self.current_epoch_f = 1;
        }
        self.heap_f.clear();
    }

    #[inline]
    fn reset_b(&mut self) {
        self.current_epoch_b = self.current_epoch_b.wrapping_add(1);
        if self.current_epoch_b == 0 {
            self.epoch_b.fill(0);
            self.current_epoch_b = 1;
        }
        self.heap_b.clear();
    }

    #[inline]
    fn get_f(&self, n: u32) -> f64 {
        if self.epoch_f[n as usize] == self.current_epoch_f {
            self.dist_f[n as usize]
        } else {
            UNREACHABLE
        }
    }

    #[inline]
    fn get_b(&self, n: u32) -> f64 {
        if self.epoch_b[n as usize] == self.current_epoch_b {
            self.dist_b[n as usize]
        } else {
            UNREACHABLE
        }
    }

    /// Stall-on-demand for a settled *forward* label: a strictly shorter
    /// path to `node` arriving through a higher-ranked neighbor proves the
    /// label is not a prefix of any shortest up–down path, so expanding it
    /// cannot change a reported distance (only waste work).
    #[inline]
    fn stalled_f(&self, ch: &ContractionHierarchy, node: u32, dist: f64) -> bool {
        ch.bwd_range(node)
            .any(|i| self.get_f(ch.bwd_from[i]) + ch.bwd_w[i] < dist)
    }

    /// Stall-on-demand for a settled *backward* label (symmetric).
    #[inline]
    fn stalled_b(&self, ch: &ContractionHierarchy, node: u32, dist: f64) -> bool {
        ch.fwd_range(node)
            .any(|i| self.get_b(ch.fwd_to[i]) + ch.fwd_w[i] < dist)
    }

    /// Shortest route `source → target` bounded by `max_dist` meters,
    /// bitwise-equal to the Dijkstra oracle (see module docs).
    pub fn route(
        &mut self,
        ch: &ContractionHierarchy,
        net: &RoadNetwork,
        source: NodeId,
        target: NodeId,
        max_dist: f64,
    ) -> Option<Route> {
        // Mirrors DijkstraEngine: the source settles unconditionally, so
        // a self-query succeeds regardless of the bound.
        if source == target {
            return Some(Route {
                segments: Vec::new(),
                length: 0.0,
            });
        }
        self.reset_f();
        self.reset_b();
        let prune = prune_bound(max_dist);
        let s = ch.rank[source.0 as usize];
        let t = ch.rank[target.0 as usize];
        self.dist_f[s as usize] = 0.0;
        self.parent_f[s as usize] = NO_EDGE;
        self.epoch_f[s as usize] = self.current_epoch_f;
        self.heap_f.push(ChHeapEntry { dist: 0.0, node: s });
        self.dist_b[t as usize] = 0.0;
        self.parent_b[t as usize] = NO_EDGE;
        self.epoch_b[t as usize] = self.current_epoch_b;
        self.heap_b.push(ChHeapEntry { dist: 0.0, node: t });

        let mut best = UNREACHABLE;
        let mut meet = NO_NODE;
        loop {
            let key_f = self.heap_f.peek().map(|e| e.dist);
            let key_b = self.heap_b.peek().map(|e| e.dist);
            let forward = match (key_f, key_b) {
                (None, None) => break,
                (Some(_), None) => true,
                (None, Some(_)) => false,
                (Some(f), Some(b)) => f.total_cmp(&b) != Ordering::Greater,
            };
            let min_key = if forward { key_f } else { key_b };
            if let Some(k) = min_key {
                // Every remaining label on both sides is >= k; once k
                // exceeds the best meeting (or the pruned query bound),
                // no reportable improvement is possible.
                if k.total_cmp(&best) == Ordering::Greater || k > prune {
                    break;
                }
            }
            if forward {
                let Some(ChHeapEntry { dist, node }) = self.heap_f.pop() else {
                    break;
                };
                if dist > self.get_f(node) {
                    continue;
                }
                let other = self.get_b(node);
                if other < UNREACHABLE {
                    let total = dist + other;
                    match total.total_cmp(&best) {
                        Ordering::Less => {
                            best = total;
                            meet = node;
                        }
                        Ordering::Equal => {
                            if node < meet {
                                meet = node;
                            }
                        }
                        Ordering::Greater => {}
                    }
                }
                if self.stalled_f(ch, node, dist) {
                    continue;
                }
                for i in ch.fwd_range(node) {
                    let to = ch.fwd_to[i];
                    let nd = dist + ch.fwd_w[i];
                    if nd <= prune && nd < self.get_f(to) {
                        self.dist_f[to as usize] = nd;
                        self.parent_f[to as usize] = ch.fwd_edges[i];
                        self.epoch_f[to as usize] = self.current_epoch_f;
                        self.heap_f.push(ChHeapEntry { dist: nd, node: to });
                    }
                }
            } else {
                let Some(ChHeapEntry { dist, node }) = self.heap_b.pop() else {
                    break;
                };
                if dist > self.get_b(node) {
                    continue;
                }
                let other = self.get_f(node);
                if other < UNREACHABLE {
                    let total = other + dist;
                    match total.total_cmp(&best) {
                        Ordering::Less => {
                            best = total;
                            meet = node;
                        }
                        Ordering::Equal => {
                            if node < meet {
                                meet = node;
                            }
                        }
                        Ordering::Greater => {}
                    }
                }
                if self.stalled_b(ch, node, dist) {
                    continue;
                }
                for i in ch.bwd_range(node) {
                    let from = ch.bwd_from[i];
                    let nd = dist + ch.bwd_w[i];
                    if nd <= prune && nd < self.get_b(from) {
                        self.dist_b[from as usize] = nd;
                        self.parent_b[from as usize] = ch.bwd_edges[i];
                        self.epoch_b[from as usize] = self.current_epoch_b;
                        self.heap_b.push(ChHeapEntry { dist: nd, node: from });
                    }
                }
            }
        }

        if meet == NO_NODE {
            return None;
        }
        self.unpack(ch, net, meet, max_dist)
    }

    /// Walks both parent chains from `meet` (a contraction rank), unpacks
    /// shortcuts to original segments, and re-folds the length from the
    /// source (the same rounded additions Dijkstra performs). Applies the
    /// bound to the re-folded length.
    fn unpack(
        &mut self,
        ch: &ContractionHierarchy,
        net: &RoadNetwork,
        meet: u32,
        max_dist: f64,
    ) -> Option<Route> {

        // Collect the up–down overlay-edge chain source → meet → target.
        let mut chain: Vec<u32> = Vec::new();
        let mut cur = meet;
        loop {
            let p = if self.epoch_f[cur as usize] == self.current_epoch_f {
                self.parent_f[cur as usize]
            } else {
                NO_EDGE
            };
            if p == NO_EDGE {
                break;
            }
            chain.push(p);
            cur = ch.rank[ch.edges[p as usize].from as usize];
        }
        chain.reverse();
        let mut cur = meet;
        loop {
            let p = if self.epoch_b[cur as usize] == self.current_epoch_b {
                self.parent_b[cur as usize]
            } else {
                NO_EDGE
            };
            if p == NO_EDGE {
                break;
            }
            chain.push(p);
            cur = ch.rank[ch.edges[p as usize].to as usize];
        }

        let mut segments: Vec<SegmentId> = Vec::new();
        for &eid in &chain {
            self.unpack_stack.clear();
            self.unpack_stack.push(eid);
            while let Some(e) = self.unpack_stack.pop() {
                match ch.edges[e as usize].kind {
                    EdgeKind::Original(sid) => segments.push(sid),
                    EdgeKind::Shortcut { left, right } => {
                        self.unpack_stack.push(right);
                        self.unpack_stack.push(left);
                    }
                }
            }
        }
        let mut length = 0.0f64;
        for &sid in &segments {
            length += net.segment(sid).length;
        }
        if length <= max_dist {
            Some(Route { segments, length })
        } else {
            None
        }
    }

    /// One-to-many counterpart of [`Self::route`], mirroring
    /// [`DijkstraEngine::node_to_nodes`](crate::shortest_path::DijkstraEngine::node_to_nodes).
    ///
    /// The forward upward search from `source` is run once to completion
    /// (its stalled up-cone is small) and shared across all targets; each
    /// target then only pays its own backward upward search. Per-pair
    /// answers are identical to [`Self::route`]'s: the forward label set
    /// here is a superset of any partially-run pairwise search, and extra
    /// labels never beat the optimum.
    pub fn node_to_nodes(
        &mut self,
        ch: &ContractionHierarchy,
        net: &RoadNetwork,
        source: NodeId,
        targets: &[NodeId],
        max_dist: f64,
    ) -> Vec<Option<Route>> {
        // Settle the complete forward up-cone of the source (within the
        // pruned query bound).
        self.reset_f();
        let prune = prune_bound(max_dist);
        let s = ch.rank[source.0 as usize];
        self.dist_f[s as usize] = 0.0;
        self.parent_f[s as usize] = NO_EDGE;
        self.epoch_f[s as usize] = self.current_epoch_f;
        self.heap_f.push(ChHeapEntry { dist: 0.0, node: s });
        while let Some(ChHeapEntry { dist, node }) = self.heap_f.pop() {
            if dist > self.get_f(node) || self.stalled_f(ch, node, dist) {
                continue;
            }
            for i in ch.fwd_range(node) {
                let to = ch.fwd_to[i];
                let nd = dist + ch.fwd_w[i];
                if nd <= prune && nd < self.get_f(to) {
                    self.dist_f[to as usize] = nd;
                    self.parent_f[to as usize] = ch.fwd_edges[i];
                    self.epoch_f[to as usize] = self.current_epoch_f;
                    self.heap_f.push(ChHeapEntry { dist: nd, node: to });
                }
            }
        }

        targets
            .iter()
            .map(|&target| {
                if target == source {
                    return Some(Route {
                        segments: Vec::new(),
                        length: 0.0,
                    });
                }
                self.reset_b();
                let t = ch.rank[target.0 as usize];
                self.dist_b[t as usize] = 0.0;
                self.parent_b[t as usize] = NO_EDGE;
                self.epoch_b[t as usize] = self.current_epoch_b;
                self.heap_b.push(ChHeapEntry { dist: 0.0, node: t });
                let mut best = UNREACHABLE;
                let mut meet = NO_NODE;
                while let Some(ChHeapEntry { dist, node }) = self.heap_b.pop() {
                    if dist > self.get_b(node) {
                        continue;
                    }
                    // All later labels are >= dist; none can improve best
                    // or come in under the pruned query bound.
                    if dist.total_cmp(&best) == Ordering::Greater || dist > prune {
                        break;
                    }
                    let other = self.get_f(node);
                    if other < UNREACHABLE {
                        let total = other + dist;
                        match total.total_cmp(&best) {
                            Ordering::Less => {
                                best = total;
                                meet = node;
                            }
                            Ordering::Equal => {
                                if node < meet {
                                    meet = node;
                                }
                            }
                            Ordering::Greater => {}
                        }
                    }
                    if self.stalled_b(ch, node, dist) {
                        continue;
                    }
                    for i in ch.bwd_range(node) {
                        let from = ch.bwd_from[i];
                        let nd = dist + ch.bwd_w[i];
                        if nd <= prune && nd < self.get_b(from) {
                            self.dist_b[from as usize] = nd;
                            self.parent_b[from as usize] = ch.bwd_edges[i];
                            self.epoch_b[from as usize] = self.current_epoch_b;
                            self.heap_b.push(ChHeapEntry { dist: nd, node: from });
                        }
                    }
                }
                if meet == NO_NODE {
                    return None;
                }
                self.unpack(ch, net, meet, max_dist)
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::NetworkBuilder;
    use crate::graph::RoadClass;
    use crate::shortest_path::DijkstraEngine;
    use lhmm_geo::Point;

    fn grid(n: usize, spacing: f64) -> RoadNetwork {
        let mut b = NetworkBuilder::new();
        let mut ids = Vec::new();
        for y in 0..n {
            for x in 0..n {
                ids.push(b.add_node(Point::new(x as f64 * spacing, y as f64 * spacing)));
            }
        }
        for y in 0..n {
            for x in 0..n {
                let i = y * n + x;
                if x + 1 < n {
                    b.add_two_way(ids[i], ids[i + 1], RoadClass::Collector).unwrap();
                }
                if y + 1 < n {
                    b.add_two_way(ids[i], ids[i + n], RoadClass::Collector).unwrap();
                }
            }
        }
        b.build().unwrap()
    }

    #[test]
    fn ch_matches_dijkstra_on_grid() {
        let net = grid(5, 100.0);
        let ch = ContractionHierarchy::build(&net);
        let mut q = ChQuery::new(&ch);
        let mut dij = DijkstraEngine::new(&net);
        let n = net.num_nodes() as u32;
        for s in 0..n {
            for t in 0..n {
                let a = q.route(&ch, &net, NodeId(s), NodeId(t), 1e12);
                let b = dij.node_to_node(&net, NodeId(s), NodeId(t), 1e12);
                match (&a, &b) {
                    (Some(x), Some(y)) => {
                        assert!(
                            x.length.total_cmp(&y.length) == std::cmp::Ordering::Equal,
                            "{s}->{t}: ch={} dij={}",
                            x.length,
                            y.length
                        );
                    }
                    (None, None) => {}
                    _ => panic!("{s}->{t}: ch={a:?} dij={b:?}"),
                }
            }
        }
    }

    #[test]
    fn ch_respects_bound_like_dijkstra() {
        let net = grid(3, 100.0);
        let ch = ContractionHierarchy::build(&net);
        let mut q = ChQuery::new(&ch);
        assert!(q.route(&ch, &net, NodeId(0), NodeId(8), 399.0).is_none());
        assert!(q.route(&ch, &net, NodeId(0), NodeId(8), 400.0).is_some());
        // Self-queries succeed regardless of the bound, like Dijkstra.
        let r = q.route(&ch, &net, NodeId(3), NodeId(3), 0.0).unwrap();
        assert!(r.segments.is_empty());
        assert_eq!(r.length, 0.0);
    }

    #[test]
    fn ch_builds_shortcuts_on_grid() {
        let net = grid(6, 150.0);
        let ch = ContractionHierarchy::build(&net);
        let st = ch.stats();
        assert_eq!(st.nodes, 36);
        assert!(st.base_edges > 0);
        // A 2-D grid cannot be contracted without shortcuts.
        assert!(st.shortcuts > 0, "expected shortcuts, got {st:?}");
        // Ranks are a permutation.
        let mut ranks = ch.rank().to_vec();
        ranks.sort_unstable();
        assert_eq!(ranks, (0..36u32).collect::<Vec<_>>());
    }
}
