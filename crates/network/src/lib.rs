//! Road-network substrate for LHMM map matching.
//!
//! This crate provides everything the matcher needs from a digital map:
//!
//! * [`graph::RoadNetwork`] — a directed road graph (intersections + road
//!   segments) with CSR adjacency,
//! * [`builder::NetworkBuilder`] — validated programmatic construction,
//! * [`generators`] — synthetic city generators able to reproduce the scale
//!   and texture of the paper's Hangzhou/Xiamen networks,
//! * [`spatial::SpatialIndex`] — a uniform-grid index for k-nearest-segment
//!   and radius queries (candidate preparation),
//! * [`tile`] — geo-tiling with halo overlap for sharded serving
//!   ([`tile::TileGrid`], [`tile::TileScope`], [`tile::TileNetwork`]),
//! * [`shortest_path`] — bounded Dijkstra with one-to-many target sets (the
//!   transition-probability workhorse),
//! * [`ch`] — contraction-hierarchy preprocessing with bidirectional
//!   upward-search queries, pinned bitwise-equal to Dijkstra,
//! * [`backend`] — the [`backend::SpBackend`] runtime selector between the
//!   two engines,
//! * [`sp_cache::SpCache`] — the precomputation/caching layer the paper uses
//!   to avoid repeated shortest-path searches (Section V-A2),
//! * [`sp_table::SpTable`] — the FMM-style precomputed origin–destination
//!   routing table,
//! * [`path::Path`] — road-segment sequences with geometry helpers,
//! * [`io`] — CSV import/export for real map extracts.
//!
//! ```
//! use lhmm_geo::Point;
//! use lhmm_network::builder::NetworkBuilder;
//! use lhmm_network::graph::RoadClass;
//! use lhmm_network::shortest_path::DijkstraEngine;
//!
//! // Two intersections joined by a two-way road.
//! let mut b = NetworkBuilder::new();
//! let a = b.add_node(Point::new(0.0, 0.0));
//! let c = b.add_node(Point::new(300.0, 400.0));
//! b.add_two_way(a, c, RoadClass::Collector).unwrap();
//! let net = b.build().unwrap();
//!
//! let mut dijkstra = DijkstraEngine::new(&net);
//! let route = dijkstra.node_to_node(&net, a, c, 1_000.0).unwrap();
//! assert_eq!(route.length, 500.0);
//! ```

#![forbid(unsafe_code)]
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

pub mod backend;
pub mod builder;
pub mod ch;
pub mod generators;
pub mod graph;
pub mod io;
pub mod path;
pub mod shortest_path;
pub mod sp_cache;
pub mod sp_table;
pub mod spatial;
pub mod tile;

pub use backend::{SpBackend, SpEngine, SpHandle};
pub use builder::NetworkBuilder;
pub use graph::{NodeId, RoadNetwork, SegmentId};
pub use path::Path;
pub use shortest_path::UNREACHABLE;
pub use spatial::SpatialIndex;
pub use tile::{TileGrid, TileNetwork, TileScope};
