//! Road-segment sequences (matching paths and ground-truth paths).

use crate::graph::{RoadNetwork, SegmentId};
use lhmm_geo::{polyline, Point};
use std::collections::HashSet;

/// A path on the road network: an ordered sequence of directed segments.
///
/// Both matcher outputs and ground-truth travel paths use this type. A path
/// is *contiguous* when each segment starts at the node the previous one
/// ends at; matcher outputs are contiguous by construction, but the type does
/// not enforce it so that partial/diagnostic paths can be represented.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Path {
    /// Traversed segments in travel order.
    pub segments: Vec<SegmentId>,
}

impl Path {
    /// Creates a path from segments.
    pub fn new(segments: Vec<SegmentId>) -> Self {
        Path { segments }
    }

    /// An empty path.
    pub fn empty() -> Self {
        Path::default()
    }

    /// True when the path has no segments.
    pub fn is_empty(&self) -> bool {
        self.segments.is_empty()
    }

    /// Number of segments.
    pub fn len(&self) -> usize {
        self.segments.len()
    }

    /// Total length in meters.
    pub fn length(&self, net: &RoadNetwork) -> f64 {
        self.segments.iter().map(|&s| net.segment(s).length).sum()
    }

    /// True when consecutive segments share a node.
    pub fn is_contiguous(&self, net: &RoadNetwork) -> bool {
        self.segments
            .windows(2)
            .all(|w| net.segment(w[0]).to == net.segment(w[1]).from)
    }

    /// Geometry as a point sequence (node positions). Empty for an empty
    /// path. Non-contiguous paths yield the concatenation of segment
    /// endpoint pairs.
    pub fn polyline(&self, net: &RoadNetwork) -> Vec<Point> {
        if self.segments.is_empty() {
            return Vec::new();
        }
        let mut pts = Vec::with_capacity(self.segments.len() + 1);
        pts.push(net.segment_start(self.segments[0]));
        for &s in &self.segments {
            let start = net.segment_start(s);
            if pts.last() != Some(&start) {
                pts.push(start);
            }
            pts.push(net.segment_end(s));
        }
        pts
    }

    /// Sum of absolute turn angles along the path geometry, in radians
    /// (the explicit transition feature `D_T`).
    pub fn total_turn(&self, net: &RoadNetwork) -> f64 {
        total_turn_of(net, &self.segments)
    }

    /// Set view of the traversed segments.
    pub fn segment_set(&self) -> HashSet<SegmentId> {
        self.segments.iter().copied().collect()
    }

    /// True when the path traverses `s`.
    pub fn contains(&self, s: SegmentId) -> bool {
        self.segments.contains(&s)
    }

    /// Removes immediate duplicate segments (produced when consecutive
    /// trajectory points match the same road).
    pub fn dedup_consecutive(&mut self) {
        self.segments.dedup();
    }

    /// Appends a route, skipping a leading segment equal to the current last
    /// segment (routes between candidates share their boundary segment).
    pub fn extend_with(&mut self, segments: &[SegmentId]) {
        for &s in segments {
            if self.segments.last() != Some(&s) {
                self.segments.push(s);
            }
        }
    }
}

/// [`Path::total_turn`] for a raw segment slice, without materializing
/// either the `Path` or its polyline — the allocation-free form the
/// transition-feature hot path uses. Bit-identical to
/// `Path::new(segments.to_vec()).total_turn(net)`: the streamed vertex
/// sequence is the same as [`Path::polyline`]'s (the accumulator ignores
/// duplicate consecutive vertices, which is exactly the dedup `polyline`
/// performs).
pub fn total_turn_of(net: &RoadNetwork, segments: &[SegmentId]) -> f64 {
    let mut acc = polyline::TurnAccumulator::default();
    for &s in segments {
        acc.push(net.segment_start(s));
        acc.push(net.segment_end(s));
    }
    acc.total()
}

impl FromIterator<SegmentId> for Path {
    fn from_iter<T: IntoIterator<Item = SegmentId>>(iter: T) -> Self {
        Path::new(iter.into_iter().collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::NetworkBuilder;
    use crate::graph::RoadClass;

    fn line_net() -> (RoadNetwork, Vec<SegmentId>) {
        let mut b = NetworkBuilder::new();
        let n0 = b.add_node(Point::new(0.0, 0.0));
        let n1 = b.add_node(Point::new(100.0, 0.0));
        let n2 = b.add_node(Point::new(100.0, 100.0));
        let n3 = b.add_node(Point::new(200.0, 100.0));
        let s0 = b.add_segment(n0, n1, RoadClass::Local).unwrap();
        let s1 = b.add_segment(n1, n2, RoadClass::Local).unwrap();
        let s2 = b.add_segment(n2, n3, RoadClass::Local).unwrap();
        (b.build().unwrap(), vec![s0, s1, s2])
    }

    #[test]
    fn length_and_contiguity() {
        let (net, segs) = line_net();
        let p = Path::new(segs.clone());
        assert_eq!(p.length(&net), 300.0);
        assert!(p.is_contiguous(&net));
        let gap = Path::new(vec![segs[0], segs[2]]);
        assert!(!gap.is_contiguous(&net));
    }

    #[test]
    fn polyline_of_contiguous_path() {
        let (net, segs) = line_net();
        let p = Path::new(segs);
        let pl = p.polyline(&net);
        assert_eq!(
            pl,
            vec![
                Point::new(0.0, 0.0),
                Point::new(100.0, 0.0),
                Point::new(100.0, 100.0),
                Point::new(200.0, 100.0),
            ]
        );
        assert!(Path::empty().polyline(&net).is_empty());
    }

    #[test]
    fn total_turn_two_right_angles() {
        let (net, segs) = line_net();
        let p = Path::new(segs);
        assert!((p.total_turn(&net) - std::f64::consts::PI).abs() < 1e-9);
    }

    #[test]
    fn total_turn_of_matches_polyline_route() {
        let (net, segs) = line_net();
        // Contiguous, non-contiguous (gap) and repeated-segment sequences
        // must all agree bit-for-bit with the allocating polyline path.
        let cases = [
            segs.clone(),
            vec![segs[0], segs[2]],
            vec![segs[0], segs[0], segs[1]],
            vec![],
        ];
        for seq in cases {
            let via_polyline = polyline::total_turn(&Path::new(seq.clone()).polyline(&net));
            assert_eq!(total_turn_of(&net, &seq).to_bits(), via_polyline.to_bits());
        }
    }

    #[test]
    fn extend_with_skips_shared_boundary() {
        let (_, segs) = line_net();
        let mut p = Path::new(vec![segs[0], segs[1]]);
        p.extend_with(&[segs[1], segs[2]]);
        assert_eq!(p.segments, vec![segs[0], segs[1], segs[2]]);
    }

    #[test]
    fn dedup_consecutive_removes_repeats() {
        let (_, segs) = line_net();
        let mut p = Path::new(vec![segs[0], segs[0], segs[1], segs[1], segs[1], segs[0]]);
        p.dedup_consecutive();
        assert_eq!(p.segments, vec![segs[0], segs[1], segs[0]]);
    }

    #[test]
    fn from_iterator_and_set() {
        let (_, segs) = line_net();
        let p: Path = segs.iter().copied().collect();
        assert_eq!(p.len(), 3);
        assert!(p.contains(segs[1]));
        assert_eq!(p.segment_set().len(), 3);
    }
}
