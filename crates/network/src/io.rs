//! CSV import/export of road networks.
//!
//! Real deployments match against map extracts rather than synthetic
//! cities. The format is two headerless CSV files:
//!
//! * nodes: `id,x,y` — integer id (dense, 0-based), planar meters,
//! * segments: `from,to,class` — node ids plus `arterial|collector|local`.
//!
//! Geometry is straight-line per segment, matching the rest of the
//! workspace; polyline roads should be pre-split into segments.

use crate::builder::{BuildError, NetworkBuilder};
use crate::graph::{NodeId, RoadClass, RoadNetwork};
use lhmm_geo::Point;
use std::fmt;
use std::io::{BufRead, BufReader, Read, Write};

/// Errors raised while reading network CSV data.
#[derive(Debug)]
pub enum IoError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// A malformed line (1-based line number and reason).
    Parse(usize, String),
    /// Structural validation failed after parsing.
    Build(BuildError),
}

impl fmt::Display for IoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IoError::Io(e) => write!(f, "io error: {e}"),
            IoError::Parse(line, msg) => write!(f, "line {line}: {msg}"),
            IoError::Build(e) => write!(f, "invalid network: {e}"),
        }
    }
}

impl std::error::Error for IoError {}

impl From<std::io::Error> for IoError {
    fn from(e: std::io::Error) -> Self {
        IoError::Io(e)
    }
}

fn parse_class(s: &str) -> Option<RoadClass> {
    match s.trim() {
        "arterial" => Some(RoadClass::Arterial),
        "collector" => Some(RoadClass::Collector),
        "local" => Some(RoadClass::Local),
        _ => None,
    }
}

fn class_name(c: RoadClass) -> &'static str {
    match c {
        RoadClass::Arterial => "arterial",
        RoadClass::Collector => "collector",
        RoadClass::Local => "local",
    }
}

/// Reads a network from node and segment CSV streams.
///
/// Node ids must be dense and ascending from 0 (the natural output of
/// [`write_csv`]); segments reference those ids.
pub fn read_csv<R1: Read, R2: Read>(nodes: R1, segments: R2) -> Result<RoadNetwork, IoError> {
    let mut b = NetworkBuilder::new();

    for (lineno, line) in BufReader::new(nodes).lines().enumerate() {
        let line = line?;
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut parts = line.split(',');
        let id: usize = parts
            .next()
            .and_then(|s| s.trim().parse().ok())
            .ok_or_else(|| IoError::Parse(lineno + 1, "bad node id".into()))?;
        let x: f64 = parts
            .next()
            .and_then(|s| s.trim().parse().ok())
            .ok_or_else(|| IoError::Parse(lineno + 1, "bad x coordinate".into()))?;
        let y: f64 = parts
            .next()
            .and_then(|s| s.trim().parse().ok())
            .ok_or_else(|| IoError::Parse(lineno + 1, "bad y coordinate".into()))?;
        if id != b.num_nodes() {
            return Err(IoError::Parse(
                lineno + 1,
                format!("node ids must be dense and ascending (expected {})", b.num_nodes()),
            ));
        }
        b.add_node(Point::new(x, y));
    }

    for (lineno, line) in BufReader::new(segments).lines().enumerate() {
        let line = line?;
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut parts = line.split(',');
        let from: u32 = parts
            .next()
            .and_then(|s| s.trim().parse().ok())
            .ok_or_else(|| IoError::Parse(lineno + 1, "bad from id".into()))?;
        let to: u32 = parts
            .next()
            .and_then(|s| s.trim().parse().ok())
            .ok_or_else(|| IoError::Parse(lineno + 1, "bad to id".into()))?;
        let class = parts
            .next()
            .and_then(parse_class)
            .ok_or_else(|| IoError::Parse(lineno + 1, "bad road class".into()))?;
        b.add_segment(NodeId(from), NodeId(to), class)
            .map_err(IoError::Build)?;
    }

    b.build().map_err(IoError::Build)
}

/// Writes a network as node and segment CSV streams (the inverse of
/// [`read_csv`]).
pub fn write_csv<W1: Write, W2: Write>(
    net: &RoadNetwork,
    mut nodes: W1,
    mut segments: W2,
) -> std::io::Result<()> {
    for n in net.node_ids() {
        let p = net.node_pos(n);
        writeln!(nodes, "{},{:.3},{:.3}", n.0, p.x, p.y)?;
    }
    for s in net.segment_ids() {
        let seg = net.segment(s);
        writeln!(
            segments,
            "{},{},{}",
            seg.from.0,
            seg.to.0,
            class_name(seg.class)
        )?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::{generate_city, GeneratorConfig};

    #[test]
    fn roundtrip_preserves_structure() {
        let net = generate_city(&GeneratorConfig::small_test(17));
        let mut nodes = Vec::new();
        let mut segs = Vec::new();
        write_csv(&net, &mut nodes, &mut segs).unwrap();
        let loaded = read_csv(nodes.as_slice(), segs.as_slice()).unwrap();
        assert_eq!(loaded.num_nodes(), net.num_nodes());
        assert_eq!(loaded.num_segments(), net.num_segments());
        for (a, b) in net.segment_ids().zip(loaded.segment_ids()) {
            assert_eq!(net.segment(a).from, loaded.segment(b).from);
            assert_eq!(net.segment(a).to, loaded.segment(b).to);
            assert_eq!(net.segment(a).class, loaded.segment(b).class);
            assert!((net.segment(a).length - loaded.segment(b).length).abs() < 0.01);
        }
    }

    #[test]
    fn read_accepts_comments_and_blank_lines() {
        let nodes = "# header\n0,0.0,0.0\n\n1,100.0,0.0\n";
        let segs = "# from,to,class\n0,1,local\n1,0,arterial\n";
        let net = read_csv(nodes.as_bytes(), segs.as_bytes()).unwrap();
        assert_eq!(net.num_nodes(), 2);
        assert_eq!(net.num_segments(), 2);
        assert_eq!(net.segment(crate::graph::SegmentId(1)).class, RoadClass::Arterial);
    }

    #[test]
    fn read_rejects_malformed_lines() {
        let bad_node = read_csv("zero,0,0\n".as_bytes(), "".as_bytes());
        assert!(matches!(bad_node, Err(IoError::Parse(1, _))));
        let bad_gap = read_csv("5,0,0\n".as_bytes(), "".as_bytes());
        assert!(matches!(bad_gap, Err(IoError::Parse(1, _))));
        let bad_class = read_csv(
            "0,0,0\n1,1,1\n".as_bytes(),
            "0,1,freeway\n".as_bytes(),
        );
        assert!(matches!(bad_class, Err(IoError::Parse(1, _))));
        let bad_ref = read_csv("0,0,0\n1,1,1\n".as_bytes(), "0,7,local\n".as_bytes());
        assert!(matches!(bad_ref, Err(IoError::Build(_))));
    }

    #[test]
    fn error_messages_are_informative() {
        let err = read_csv("x,0,0\n".as_bytes(), "".as_bytes()).unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("line 1"), "{msg}");
    }
}
