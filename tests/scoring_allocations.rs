//! Zero-allocation proof for the vectorized scoring path.
//!
//! A counting global allocator wraps `System`; after one warm-up pass, a
//! second pass over the same per-point candidate batches and the same
//! transition routes must perform **zero** heap allocations inside the
//! scoring calls. This is the steady state batch matching runs in: scratch
//! arenas are warm, per-trajectory setup (contexts, key projections, the
//! relevance cache) has been paid, and every `P_O`/`P_T` evaluation is pure
//! arithmetic over pooled buffers.
//!
//! One `#[test]` only: the allocation counter is process-global and other
//! tests running concurrently would pollute the delta.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

struct CountingAlloc;

static ALLOCS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.alloc_zeroed(layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
}

#[global_allocator]
static ALLOCATOR: CountingAlloc = CountingAlloc;

fn allocs() -> u64 {
    ALLOCS.load(Ordering::Relaxed)
}

#[test]
fn warm_scoring_path_performs_no_heap_allocations() {
    use lhmm::prelude::*;
    use lhmm_neural::Scratch;

    let ds = Dataset::generate(&DatasetConfig::tiny_test(191));
    // Reduced epochs: weight quality is irrelevant here, only the shapes
    // and code paths matter.
    let mut cfg = LhmmConfig::fast_test(191);
    cfg.obs.epochs = 20;
    cfg.obs.fuse_epochs = 10;
    cfg.trans.epochs = 20;
    cfg.trans.fuse_epochs = 10;
    let model = LhmmModel::train(&ds, cfg);
    let obs = model.observation_learner().expect("learned P_O");
    let trans = model.transition_learner().expect("learned P_T");
    let emb = model.embeddings();

    let rec = ds
        .test
        .iter()
        .max_by_key(|r| r.cellular.len())
        .expect("non-empty test split");
    let towers = rec.cellular.towers();

    // Pre-compute everything the scoring calls take as input, outside the
    // measured region: candidate batches per point and transition routes.
    let mut point_batches: Vec<(lhmm::geo::Point, lhmm_cellsim::tower::TowerId, Vec<SegmentId>)> =
        rec.cellular
            .points
            .iter()
            .map(|p| {
                let pos = p.effective_pos();
                let segs: Vec<SegmentId> = ds
                    .index
                    .k_nearest(&ds.network, pos, 16, 3_000.0)
                    .into_iter()
                    .map(|(s, _)| s)
                    .collect();
                (pos, p.tower, segs)
            })
            .collect();
    point_batches.retain(|(_, _, segs)| !segs.is_empty());
    assert!(!point_batches.is_empty(), "no candidate batches to score");
    let routes: Vec<Vec<SegmentId>> = rec
        .truth
        .segments
        .chunks(6)
        .filter(|c| c.len() == 6)
        .take(8)
        .map(|c| c.to_vec())
        .collect();
    assert!(!routes.is_empty(), "trajectory too short for route windows");

    // ---------------- P_O ----------------
    let mut obs_scorer = obs.traj_scorer(emb, &towers, Scratch::new(), false);
    let mut out = Vec::with_capacity(32);
    // Warm-up pass: scratch buffers and the output vector get sized.
    for (i, (pos, tower, segs)) in point_batches.iter().enumerate() {
        obs_scorer.score_into(&ds.network, model.graph(), *pos, *tower, i, segs, &mut out);
    }
    let before = allocs();
    for (i, (pos, tower, segs)) in point_batches.iter().enumerate() {
        obs_scorer.score_into(&ds.network, model.graph(), *pos, *tower, i, segs, &mut out);
    }
    let obs_delta = allocs() - before;
    assert_eq!(
        obs_delta, 0,
        "warm P_O scoring allocated {obs_delta} times over {} points",
        point_batches.len()
    );
    let (obs_scratch, obs_stats) = obs_scorer.finish();
    assert!(obs_stats.calls >= 2 * point_batches.len() as u64);
    drop(obs_scratch);

    // ---------------- P_T ----------------
    // Scorer A warms the shared scratch shapes; scorer B then scores *new*
    // (uncached) roads with a warm arena — the per-point steady state.
    use lhmm_core::transition::TrajTransScorer;
    let mut warm = TrajTransScorer::with_scratch(trans, emb, &towers, Scratch::new(), false);
    for r in &routes {
        let _ = warm.transition_prob(&ds.network, 700.0, 45.0, 900.0, r);
    }
    let (scratch, _) = warm.finish();
    let mut scorer = TrajTransScorer::with_scratch(trans, emb, &towers, scratch, false);
    // One priming call: sizes the missing-roads buffer for 6-road routes.
    let _ = scorer.transition_prob(&ds.network, 700.0, 45.0, 900.0, &routes[0]);
    let before = allocs();
    for r in &routes[1..] {
        // Every route is disjoint from the cache: this measures the full
        // compute path (batched attention + both MLPs), not cache hits.
        let _ = scorer.transition_prob(&ds.network, 700.0, 45.0, 900.0, r);
    }
    let trans_delta = allocs() - before;
    assert_eq!(
        trans_delta, 0,
        "warm P_T scoring allocated {trans_delta} times over {} routes",
        routes.len() - 1
    );
    let (allocs_total, high_water) = scorer.scratch_stats();
    assert!(high_water > 0, "scratch arena never used");
    // The arena itself reports the same steady state the allocator saw.
    assert!(allocs_total > 0, "warm-up never allocated — vacuous test");
}
