//! Parallel-vs-serial equivalence for the batch matching engine.
//!
//! The batch matcher's contract (see `lhmm_core::batch`) is that worker
//! count, scheduling and cache warm-up change only speed, never results:
//! `match_batch(trajs)[i]` must be byte-identical to matching `trajs[i]`
//! through a serial [`Lhmm`] loop. These tests pin that contract at 1, 2
//! and 4 workers, and under an adversarial mixed-length workload designed
//! to make work stealing complete trajectories far out of input order.

use lhmm::prelude::*;
use lhmm_core::batch::BatchMatcher;
use lhmm_core::types::MatchContext;

fn cheap_config(seed: u64) -> LhmmConfig {
    // Ablate the learned probabilities: training drops to milliseconds and
    // the engine code paths under test (Viterbi, shortcuts, shortest-path
    // caching) are identical.
    let mut cfg = LhmmConfig::fast_test(seed);
    cfg.use_learned_obs = false;
    cfg.use_learned_trans = false;
    cfg
}

fn context(ds: &Dataset) -> MatchContext<'_> {
    MatchContext {
        net: &ds.network,
        index: &ds.index,
        towers: &ds.towers,
    }
}

fn serial_results(
    ds: &Dataset,
    matcher: &mut Lhmm,
    trajs: &[lhmm::cellsim::traj::CellularTrajectory],
) -> Vec<MatchResult> {
    let ctx = context(ds);
    trajs
        .iter()
        .map(|t| matcher.match_trajectory(&ctx, t))
        .collect()
}

fn assert_identical(serial: &[MatchResult], batch: &[MatchResult], label: &str) {
    assert_eq!(serial.len(), batch.len(), "{label}: length mismatch");
    for (i, (s, b)) in serial.iter().zip(batch).enumerate() {
        assert_eq!(
            s.path, b.path,
            "{label}: path for trajectory {i} differs from serial"
        );
        assert_eq!(
            s.candidate_sets, b.candidate_sets,
            "{label}: candidate sets for trajectory {i} differ from serial"
        );
    }
}

#[test]
fn parallel_matches_serial_at_1_2_4_workers() {
    let ds = Dataset::generate(&DatasetConfig::tiny_test(90));
    let mut serial = Lhmm::train(&ds, cheap_config(90));
    let trajs: Vec<_> = ds.test.iter().map(|r| r.cellular.clone()).collect();
    let expected = serial_results(&ds, &mut serial, &trajs);
    let ctx = context(&ds);

    for workers in [1usize, 2, 4] {
        let matcher = BatchMatcher::new(serial.model(), BatchConfig::with_workers(workers));
        let (results, stats) = matcher.match_batch(&ctx, &trajs);
        assert_identical(&expected, &results, &format!("{workers} workers"));
        assert_eq!(stats.per_worker.len(), workers.min(trajs.len()));
        assert_eq!(
            stats.per_worker.iter().map(|w| w.matched).sum::<usize>(),
            trajs.len()
        );
    }
}

#[test]
fn equivalence_holds_without_warm_layer() {
    // The warm layer is an optimization; disabling it must not change
    // results either.
    let ds = Dataset::generate(&DatasetConfig::tiny_test(91));
    let mut serial = Lhmm::train(&ds, cheap_config(91));
    let trajs: Vec<_> = ds.test.iter().take(6).map(|r| r.cellular.clone()).collect();
    let expected = serial_results(&ds, &mut serial, &trajs);
    let ctx = context(&ds);
    let cfg = BatchConfig {
        workers: 2,
        warm_pairs: 0,
        ..Default::default()
    };
    let (results, _) = BatchMatcher::new(serial.model(), cfg).match_batch(&ctx, &trajs);
    assert_identical(&expected, &results, "no warm layer");
}

#[test]
fn ordering_is_stable_under_adversarial_mixed_length_workload() {
    // Adversarial schedule: alternate the longest trajectories with
    // stubs of 1-3 points and outright empty ones. Under work stealing
    // the short jobs finish many positions ahead of the long ones, so any
    // index-bookkeeping error shows up as results landing in the wrong
    // slot (which the per-index comparison against serial detects).
    let ds = Dataset::generate(&DatasetConfig::tiny_test(92));
    let mut serial = Lhmm::train(&ds, cheap_config(92));

    let mut by_len: Vec<_> = ds.test.iter().map(|r| r.cellular.clone()).collect();
    by_len.sort_by_key(|t| std::cmp::Reverse(t.len()));
    let mut trajs = Vec::new();
    for (i, traj) in by_len.into_iter().enumerate() {
        let mut stub = traj.clone();
        stub.points.truncate(1 + i % 3);
        trajs.push(traj); // long job...
        trajs.push(stub); // ...followed by a near-instant one
        if i % 3 == 0 {
            trajs.push(lhmm::cellsim::traj::CellularTrajectory::default()); // empty
        }
    }
    let expected = serial_results(&ds, &mut serial, &trajs);
    let ctx = context(&ds);

    let matcher = BatchMatcher::new(serial.model(), BatchConfig::with_workers(4));
    // Repeat: scheduling varies between runs, output must not.
    for round in 0..3 {
        let (results, stats) = matcher.match_batch(&ctx, &trajs);
        assert_identical(&expected, &results, &format!("round {round}"));
        assert_eq!(
            stats.per_worker.iter().map(|w| w.matched).sum::<usize>(),
            trajs.len()
        );
    }
}
