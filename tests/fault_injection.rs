//! Adversarial fault-injection sweep: every corpus input must come back as
//! `Ok` or a typed [`MatchError`] — never a panic — across the serial,
//! parallel, streaming, scalar and vectorized matching modes, and the
//! corpus itself must be byte-reproducible from its seed.

use lhmm::cellsim::faults::{AdversarialCorpus, Fault, FaultPlan};
use lhmm::cellsim::tower::{CellTower, TowerField, TowerId};
use lhmm::cellsim::traj::CellularTrajectory;
use lhmm::core::candidates::{nearest_segments, to_candidates};
use lhmm::core::classic::{ClassicModel, ClassicObservation, ClassicTransition};
use lhmm::core::error::MatchError;
use lhmm::core::streaming::StreamingEngine;
use lhmm::core::types::MatchContext;
use lhmm::core::viterbi::HmmEngine;
use lhmm::network::builder::NetworkBuilder;
use lhmm::network::graph::RoadClass;
use lhmm::network::spatial::SpatialIndex;
use lhmm::prelude::*;

const CORPUS_SEED: u64 = 0xFA57;

fn base_trajs(ds: &Dataset, n: usize) -> Vec<CellularTrajectory> {
    ds.test.iter().take(n).map(|r| r.cellular.clone()).collect()
}

#[test]
fn corpus_is_byte_reproducible_from_its_seed() {
    let ds = Dataset::generate(&DatasetConfig::tiny_test(3001));
    let base = base_trajs(&ds, 3);
    let a = AdversarialCorpus::generate(&base, CORPUS_SEED);
    let b = AdversarialCorpus::generate(&base, CORPUS_SEED);
    assert_eq!(
        a.fingerprint(),
        b.fingerprint(),
        "same seed must reproduce the corpus byte for byte"
    );
    let c = AdversarialCorpus::generate(&base, CORPUS_SEED + 1);
    assert_ne!(a.fingerprint(), c.fingerprint());
    // Case-level reproducibility too, not just the rollup hash.
    for (ca, cb) in a.cases.iter().zip(&b.cases) {
        assert_eq!(ca.plan, cb.plan);
        assert_eq!(ca.traj.len(), cb.traj.len());
    }
}

/// Serial offline matching over the full corpus, in both scoring modes.
/// Every case must return `Ok` or a typed error; `Ok` results must be
/// well-formed (valid segments, candidate sets aligned to the input).
#[test]
fn offline_matcher_survives_corpus_in_scalar_and_vectorized_modes() {
    let ds = Dataset::generate(&DatasetConfig::tiny_test(3002));
    let base = base_trajs(&ds, 2);
    let corpus = AdversarialCorpus::generate(&base, CORPUS_SEED);
    let ctx = MatchContext {
        net: &ds.network,
        index: &ds.index,
        towers: &ds.towers,
    };
    // Learned observation *and* transition models so both the vectorized
    // fast path and the scalar reference are actually exercised.
    let mut lhmm = Lhmm::train(&ds, LhmmConfig::fast_test(3002));
    for scalar in [false, true] {
        lhmm.config.scalar_scoring = scalar;
        let model = lhmm.model();
        let mut engine = HmmEngine::new(&ds.network, model.engine_config());
        for case in &corpus.cases {
            let verdict = model.try_match_with_engine_stats(&ctx, &case.traj, &mut engine);
            match verdict {
                Ok((result, stats)) => {
                    for &seg in &result.path.segments {
                        assert!(
                            seg.idx() < ds.network.num_segments(),
                            "plan {}: invalid segment",
                            case.plan
                        );
                    }
                    let sets = result.candidate_sets.expect("LHMM exposes candidate sets");
                    assert_eq!(sets.len(), case.traj.len(), "plan {}", case.plan);
                    // Degradation accounting must cover every dropped point.
                    let kept = sets.iter().filter(|s| !s.is_empty()).count();
                    assert!(
                        stats.degradation.dropped_points as usize + kept >= case.traj.len(),
                        "plan {}: drops unaccounted",
                        case.plan
                    );
                }
                Err(MatchError::EmptyTrajectory) => {
                    assert_eq!(case.traj.len(), 0, "plan {}", case.plan);
                }
                Err(MatchError::NoCandidates) => {
                    assert!(!case.traj.is_empty(), "plan {}", case.plan);
                }
                Err(e) => panic!("plan {}: unexpected error {e}", case.plan),
            }
        }
    }
}

/// The expected verdicts for the two extreme plans are pinned: an emptied
/// trajectory is `EmptyTrajectory`, a trajectory teleported 5000 km off the
/// map has no candidates anywhere.
#[test]
fn degenerate_plans_map_to_their_typed_errors() {
    let ds = Dataset::generate(&DatasetConfig::tiny_test(3003));
    let base = base_trajs(&ds, 1);
    let corpus = AdversarialCorpus::generate(&base, CORPUS_SEED);
    let ctx = MatchContext {
        net: &ds.network,
        index: &ds.index,
        towers: &ds.towers,
    };
    let mut cfg = LhmmConfig::fast_test(3003);
    cfg.use_learned_obs = false; // verdicts don't depend on learned scoring
    cfg.use_learned_trans = false;
    let lhmm = Lhmm::train(&ds, cfg);
    let model = lhmm.model();
    let mut engine = HmmEngine::new(&ds.network, model.engine_config());
    for case in &corpus.cases {
        let verdict = model.try_match_with_engine_stats(&ctx, &case.traj, &mut engine);
        match case.plan.as_str() {
            "empty" => assert!(
                matches!(verdict, Err(MatchError::EmptyTrajectory)),
                "empty plan must be EmptyTrajectory"
            ),
            "teleport-off-map" => assert!(
                matches!(verdict, Err(MatchError::NoCandidates)),
                "off-map plan must be NoCandidates"
            ),
            "clean" => assert!(verdict.is_ok(), "clean control must match"),
            _ => {}
        }
    }
    // The infallible wrapper maps both failures to empty results and counts
    // them, so batch pipelines keep going.
    let (result, stats) =
        model.match_with_engine_stats(&ctx, &CellularTrajectory::default(), &mut engine);
    assert!(result.path.is_empty());
    assert_eq!(stats.degradation.failed_matches, 1);
    assert!(stats.degraded());
}

/// Parallel batch matching over the corpus: no panics, verdicts identical
/// across worker counts, degraded-trajectory accounting consistent.
#[test]
fn parallel_batch_survives_corpus_with_deterministic_verdicts() {
    let ds = Dataset::generate(&DatasetConfig::tiny_test(3004));
    let base = base_trajs(&ds, 2);
    let corpus = AdversarialCorpus::generate(&base, CORPUS_SEED);
    let trajs: Vec<CellularTrajectory> = corpus.cases.iter().map(|c| c.traj.clone()).collect();
    let ctx = MatchContext {
        net: &ds.network,
        index: &ds.index,
        towers: &ds.towers,
    };
    let mut cfg = LhmmConfig::fast_test(3004);
    cfg.use_learned_obs = false; // cheap training; engine paths identical
    cfg.use_learned_trans = false;
    let model = LhmmModel::train(&ds, cfg);

    let (serial, _) = BatchMatcher::new(&model, BatchConfig::with_workers(1))
        .try_match_batch(&ctx, &trajs);
    let (parallel, stats) = BatchMatcher::new(&model, BatchConfig::with_workers(3))
        .try_match_batch(&ctx, &trajs);
    assert_eq!(serial.len(), trajs.len());
    for (i, (s, p)) in serial.iter().zip(&parallel).enumerate() {
        match (s, p) {
            (Ok(a), Ok(b)) => assert_eq!(
                a.path.segments, b.path.segments,
                "case {i} ({}) differs across worker counts",
                corpus.cases[i].plan
            ),
            (Err(a), Err(b)) => assert_eq!(a, b, "case {i}"),
            _ => panic!("case {i}: verdict depends on worker count"),
        }
    }
    // Worker accounting: every failed case is visible as a degraded one.
    let failures = parallel.iter().filter(|r| r.is_err()).count();
    let degraded: usize = stats.per_worker.iter().map(|w| w.degraded).sum();
    assert!(degraded >= failures, "degraded {degraded} < failures {failures}");
    assert_eq!(
        stats.total().degradation.failed_matches as usize,
        failures
    );
}

/// Streaming over the corpus: empty candidate layers are skipped via the
/// typed error, every other observation streams through, and `finish`
/// always returns (possibly empty) without panicking.
#[test]
fn streaming_engine_survives_corpus() {
    let ds = Dataset::generate(&DatasetConfig::tiny_test(3005));
    let base = base_trajs(&ds, 2);
    let corpus = AdversarialCorpus::generate(&base, CORPUS_SEED);
    for (ci, case) in corpus.cases.iter().enumerate() {
        let positions = case.traj.effective_positions();
        let mut model = ClassicModel::new(
            ClassicObservation::cellular(),
            ClassicTransition::cellular(),
            positions.clone(),
        );
        let mut stream = StreamingEngine::new(&ds.network, 2);
        let mut pushed = 0usize;
        for (i, p) in case.traj.points.iter().enumerate() {
            let pairs = nearest_segments(&ds.network, &ds.index, positions[i], 10, 3_000.0);
            let layer = to_candidates(&mut model, i, &pairs);
            match stream.push(positions[i], p.t, layer, &mut model) {
                Ok(_) => pushed += 1,
                Err(MatchError::EmptyLayer { .. }) => {} // off-network point: skip
                Err(e) => panic!("case {ci} ({}): unexpected error {e}", case.plan),
            }
        }
        let deg = stream.degradation();
        let path = stream.finish();
        if pushed > 0 {
            assert!(!path.is_empty(), "case {ci} ({})", case.plan);
        } else {
            assert!(path.is_empty());
            assert!(!deg.any(), "no observations, no degradation events");
        }
    }
}

/// The contraction-hierarchy shortest-path backend must be a drop-in
/// replacement under fault injection: over the full seeded corpus, the
/// serial, parallel-batch, and streaming engines all run panic-free with
/// `SpBackend::Ch` and return verdicts byte-identical to the Dijkstra
/// oracle — paths, candidate sets, and typed errors alike.
#[test]
fn corpus_verdicts_are_identical_under_both_sp_backends() {
    let ds = Dataset::generate(&DatasetConfig::tiny_test(3007));
    let base = base_trajs(&ds, 2);
    let corpus = AdversarialCorpus::generate(&base, CORPUS_SEED);
    let trajs: Vec<CellularTrajectory> = corpus.cases.iter().map(|c| c.traj.clone()).collect();
    let ctx = MatchContext {
        net: &ds.network,
        index: &ds.index,
        towers: &ds.towers,
    };
    let mut cfg = LhmmConfig::fast_test(3007);
    cfg.use_learned_obs = false; // cheap training; engine paths identical
    cfg.use_learned_trans = false;

    // One corpus sweep through the serial and batch engines: verdicts
    // flattened to comparable bytes.
    let sweep = |backend: SpBackend| {
        let mut cfg = cfg.clone();
        cfg.sp_backend = backend;
        let model = LhmmModel::train(&ds, cfg);
        let expected_shortcuts = model.sp_handle().shortcut_count();
        let mut engine = HmmEngine::new(&ds.network, model.engine_config());
        let mut serial = Vec::new();
        for traj in &trajs {
            match model.try_match_with_engine_stats(&ctx, traj, &mut engine) {
                Ok((r, stats)) => {
                    assert_eq!(stats.sp_shortcuts, expected_shortcuts);
                    serial.push(Ok((r.path.segments, r.candidate_sets)));
                }
                Err(e) => serial.push(Err(e)),
            }
        }
        let (batch, _) = BatchMatcher::new(&model, BatchConfig::with_workers(3))
            .try_match_batch(&ctx, &trajs);
        let batch: Vec<_> = batch
            .into_iter()
            .map(|v| v.map(|r| (r.path.segments, r.candidate_sets)))
            .collect();
        (serial, batch, expected_shortcuts)
    };

    let (dij_serial, dij_batch, dij_shortcuts) = sweep(SpBackend::Dijkstra);
    let (ch_serial, ch_batch, ch_shortcuts) = sweep(SpBackend::Ch);
    assert_eq!(dij_shortcuts, 0, "Dijkstra has no preprocessing artifacts");
    assert!(ch_shortcuts > 0, "CH on a real city must add shortcuts");
    for (i, (d, c)) in dij_serial.iter().zip(&ch_serial).enumerate() {
        assert_eq!(d, c, "serial case {i} ({})", corpus.cases[i].plan);
    }
    for (i, (d, c)) in dij_batch.iter().zip(&ch_batch).enumerate() {
        assert_eq!(d, c, "batch case {i} ({})", corpus.cases[i].plan);
    }
    assert_eq!(dij_serial, dij_batch, "serial and batch must agree");

    // Streaming: same committed path under both backends, case by case.
    let ch = SpHandle::build(&ds.network, SpBackend::Ch);
    for (ci, case) in corpus.cases.iter().enumerate() {
        let positions = case.traj.effective_positions();
        let mut paths = Vec::new();
        for handle in [SpHandle::default(), ch.clone()] {
            let mut model = ClassicModel::new(
                ClassicObservation::cellular(),
                ClassicTransition::cellular(),
                positions.clone(),
            );
            let mut stream = StreamingEngine::with_backend(&ds.network, 2, &handle);
            for (i, p) in case.traj.points.iter().enumerate() {
                let pairs = nearest_segments(&ds.network, &ds.index, positions[i], 10, 3_000.0);
                let layer = to_candidates(&mut model, i, &pairs);
                match stream.push(positions[i], p.t, layer, &mut model) {
                    Ok(_) | Err(MatchError::EmptyLayer { .. }) => {}
                    Err(e) => panic!("case {ci} ({}): unexpected error {e}", case.plan),
                }
            }
            paths.push(stream.finish().segments);
        }
        assert_eq!(
            paths[0], paths[1],
            "case {ci} ({}): streaming path depends on SP backend",
            case.plan
        );
    }
}

/// Satellite: an empty road network is a construction-time error (the
/// matcher never sees one), and a *disconnected* network degrades to a
/// glued route with the gap counted — not a panic, not an empty result.
#[test]
fn disconnected_network_glues_route_and_counts_the_gap() {
    // Two line components 100 km apart with no connecting segment.
    let mut b = NetworkBuilder::new();
    let a0 = b.add_node(Point::new(0.0, 0.0));
    let a1 = b.add_node(Point::new(500.0, 0.0));
    let a2 = b.add_node(Point::new(1_000.0, 0.0));
    let c0 = b.add_node(Point::new(100_000.0, 0.0));
    let c1 = b.add_node(Point::new(100_500.0, 0.0));
    b.add_two_way(a0, a1, RoadClass::Local).expect("edge");
    b.add_two_way(a1, a2, RoadClass::Local).expect("edge");
    b.add_two_way(c0, c1, RoadClass::Local).expect("edge");
    let net = b.build().expect("valid two-component network");
    let index = SpatialIndex::build(&net, 500.0);

    let positions = [Point::new(250.0, 10.0), Point::new(100_250.0, 10.0)];
    let mut model = ClassicModel::new(
        ClassicObservation::cellular(),
        ClassicTransition::cellular(),
        positions.to_vec(),
    );
    let layers: Vec<_> = positions
        .iter()
        .enumerate()
        .map(|(i, &p)| to_candidates(&mut model, i, &nearest_segments(&net, &index, p, 4, 2_000.0)))
        .collect();
    let pts: Vec<(Point, f64)> = positions
        .iter()
        .enumerate()
        .map(|(i, &p)| (p, i as f64 * 60.0))
        .collect();
    let mut engine = HmmEngine::new(&net, Default::default());
    let out = engine
        .try_find_path(&net, &pts, layers, &mut model)
        .expect("disconnection degrades, not fails");
    assert!(!out.path.is_empty());
    assert!(!out.path.is_contiguous(&net), "gap must remain visible");
    let deg = engine.take_degradation();
    assert!(deg.disconnected_joins >= 1, "{deg:?}");

    // An empty network cannot be constructed at all.
    assert!(NetworkBuilder::new().build().is_err());
}

/// Satellite: a fault plan composed only of deterministic injectors is
/// seed-independent, while seeded plans replay exactly per (seed, case).
#[test]
fn fault_plan_streams_are_deterministic_per_seed_and_case() {
    let ds = Dataset::generate(&DatasetConfig::tiny_test(3006));
    let traj = &ds.test[0].cellular;
    let plan = FaultPlan::new(
        "mix",
        vec![
            Fault::Drop { p: 0.4 },
            Fault::Teleport {
                p: 0.3,
                distance: 2_500.0,
            },
        ],
    );
    let a = plan.apply(traj, 9, 0);
    let b = plan.apply(traj, 9, 0);
    let bits = |t: &CellularTrajectory| {
        t.points
            .iter()
            .map(|p| (p.pos.x.to_bits(), p.pos.y.to_bits(), p.t.to_bits()))
            .collect::<Vec<_>>()
    };
    assert_eq!(bits(&a), bits(&b));
    // Different case index => different stream.
    let c = plan.apply(traj, 9, 1);
    assert_ne!(bits(&a), bits(&c));

    let truncate = FaultPlan::new("cut", vec![Fault::Truncate { keep: 1 }]);
    assert_eq!(truncate.apply(traj, 1, 0).len(), 1);
    assert_eq!(truncate.apply(traj, 2, 0).len(), 1);

    // Degenerate inputs are safe for every injector.
    let empty = CellularTrajectory::default();
    for f in [
        Fault::Drop { p: 0.5 },
        Fault::Duplicate { p: 0.5 },
        Fault::SwapAdjacent { p: 0.5 },
        Fault::PingPong { p: 0.5 },
        Fault::Teleport {
            p: 0.5,
            distance: 100.0,
        },
        Fault::Truncate { keep: 3 },
        Fault::EqualTimestamps { p: 0.5 },
        Fault::NonMonotoneTimestamps { p: 0.5 },
        Fault::FarFutureTimestamps {
            p: 0.5,
            offset_s: 1e9,
        },
    ] {
        let out = FaultPlan::new("one", vec![f]).apply(&empty, 0, 0);
        assert!(out.is_empty());
    }

    // TowerField sanity used by the corpus cases: towers referenced by the
    // simulator exist. (Guards the corpus against dangling tower ids.)
    let field = TowerField::new(
        vec![CellTower {
            id: TowerId(0),
            pos: Point::new(0.0, 0.0),
            azimuth: 0.0,
            gain_db: 0.0,
            power_db: 0.0,
        }],
        1_000.0,
    );
    assert_eq!(field.len(), 1);
    for case in AdversarialCorpus::generate(std::slice::from_ref(traj), 5).cases {
        for p in &case.traj.points {
            assert!(p.tower.idx() < ds.towers.len(), "plan {}", case.plan);
        }
    }
}
