//! Corpus-level SIMD-kernel equivalence: a seeded [`AdversarialCorpus`]
//! matched by a fully learned LHMM must produce an **identical**
//! match-result fingerprint under every kernel path this machine supports
//! (scalar, and each of SSE2/AVX2/NEON that is available). This is the
//! integration backstop above `crates/neural/tests/kernel_dispatch.rs`:
//! any bit divergence in the dispatched kernels would change scores,
//! scores change Viterbi verdicts, and the fingerprint catches it.
//!
//! ci.sh additionally re-runs this suite (and the scoring-equivalence and
//! fault-injection suites) once per supported kernel with `LHMM_KERNEL`
//! forced in the environment, covering the startup-env dispatch arm; the
//! in-process sweep here covers the `force_scope` arm.

use lhmm::cellsim::faults::AdversarialCorpus;
use lhmm::core::error::MatchError;
use lhmm::core::viterbi::HmmEngine;
use lhmm::neural::kernel::{self, Kernel};
use lhmm::prelude::*;

const CORPUS_SEED: u64 = 0x51D3;

/// FNV-1a over the per-case verdicts: route segments, candidate sets,
/// typed-error discriminants (mirrors the `lhmm-lint --races` verdict
/// fingerprint).
fn fingerprint(results: &[Result<(MatchResult, MatchStats), MatchError>]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    let mut eat = |b: u8| {
        h ^= b as u64;
        h = h.wrapping_mul(0x1000_0000_01b3);
    };
    for r in results {
        match r {
            Ok((m, _)) => {
                eat(1);
                for s in &m.path.segments {
                    for b in (s.0 as u64).to_le_bytes() {
                        eat(b);
                    }
                }
                if let Some(sets) = &m.candidate_sets {
                    eat(2);
                    for set in sets {
                        eat(set.len() as u8);
                        for s in set {
                            for b in (s.0 as u64).to_le_bytes() {
                                eat(b);
                            }
                        }
                    }
                }
            }
            Err(MatchError::EmptyTrajectory) => eat(10),
            Err(MatchError::NoCandidates) => eat(11),
            Err(MatchError::LayerMismatch { .. }) => eat(12),
            Err(MatchError::EmptyLayer { .. }) => eat(13),
        }
    }
    h
}

#[test]
fn adversarial_corpus_fingerprint_is_identical_under_every_kernel() {
    let ds = Dataset::generate(&DatasetConfig::tiny_test(CORPUS_SEED));
    // Learned P_O and P_T both active: every dispatched kernel — matmul,
    // fused linear, attention scores, softmax context — runs on every
    // trajectory of the corpus.
    let model = LhmmModel::train(&ds, LhmmConfig::fast_test(CORPUS_SEED));
    let base: Vec<_> = ds.test.iter().take(3).map(|r| r.cellular.clone()).collect();
    let corpus = AdversarialCorpus::generate(&base, CORPUS_SEED);
    let ctx = MatchContext {
        net: &ds.network,
        index: &ds.index,
        towers: &ds.towers,
    };

    let run = |kern: Kernel| -> (u64, usize) {
        let _guard = kernel::force_scope(kern);
        let mut engine = HmmEngine::new(&ds.network, model.engine_config());
        let results: Vec<_> = corpus
            .cases
            .iter()
            .map(|c| model.try_match_with_engine_stats(&ctx, &c.traj, &mut engine))
            .collect();
        let nonempty = results
            .iter()
            .filter(|r| matches!(r, Ok((m, _)) if !m.path.is_empty()))
            .count();
        // Telemetry must name the forced kernel on every successful match.
        for r in results.iter().flatten() {
            assert_eq!(r.1.kernel, kern.name(), "MatchStats.kernel mismatch");
        }
        (fingerprint(&results), nonempty)
    };

    let (reference, nonempty) = run(Kernel::Scalar);
    assert!(
        nonempty > 0,
        "corpus produced no non-empty matches; kernel equivalence would be vacuous"
    );
    for kern in kernel::supported_kernels() {
        let (fp, _) = run(kern);
        assert_eq!(
            fp, reference,
            "adversarial-corpus fingerprint diverged under {kern:?}"
        );
    }
}

/// The same sweep with the scalar *scoring* reference path enabled: the
/// `scalar_scoring` oracle flag and the kernel dispatch are orthogonal
/// switches, and every combination must agree.
#[test]
fn scalar_scoring_oracle_agrees_with_every_kernel() {
    let ds = Dataset::generate(&DatasetConfig::tiny_test(CORPUS_SEED + 1));
    let mut model = LhmmModel::train(&ds, LhmmConfig::fast_test(CORPUS_SEED + 1));
    let base: Vec<_> = ds.test.iter().take(2).map(|r| r.cellular.clone()).collect();
    let corpus = AdversarialCorpus::generate(&base, CORPUS_SEED + 1);
    let ctx = MatchContext {
        net: &ds.network,
        index: &ds.index,
        towers: &ds.towers,
    };

    let mut fingerprints = Vec::new();
    for scalar_scoring in [true, false] {
        model.config.scalar_scoring = scalar_scoring;
        for kern in kernel::supported_kernels() {
            let _guard = kernel::force_scope(kern);
            let mut engine = HmmEngine::new(&ds.network, model.engine_config());
            let results: Vec<_> = corpus
                .cases
                .iter()
                .map(|c| model.try_match_with_engine_stats(&ctx, &c.traj, &mut engine))
                .collect();
            fingerprints.push((scalar_scoring, kern, fingerprint(&results)));
        }
    }
    let reference = fingerprints[0].2;
    for (scalar_scoring, kern, fp) in fingerprints {
        assert_eq!(
            fp, reference,
            "verdicts diverged at scalar_scoring={scalar_scoring}, kernel={kern:?}"
        );
    }
}
