//! Contract tests: every matcher in the workspace must handle edge-case
//! trajectories without panicking and return well-formed results.

use lhmm::baselines::heuristic::{clsters, ifm, mcm, snapnet, stm, stm_s, thmm};
use lhmm::baselines::ivmm::Ivmm;
use lhmm::baselines::seq2seq::{Seq2SeqConfig, Seq2SeqMatcher};
use lhmm::cellsim::tower::TowerId;
use lhmm::cellsim::traj::{CellularPoint, CellularTrajectory};
use lhmm::core::types::{MapMatcher, MatchContext};
use lhmm::prelude::*;

fn all_matchers(ds: &Dataset) -> Vec<Box<dyn MapMatcher>> {
    vec![
        Box::new(stm(&ds.network)),
        Box::new(stm_s(&ds.network)),
        Box::new(ifm(&ds.network)),
        Box::new(mcm(&ds.network)),
        Box::new(clsters(&ds.network)),
        Box::new(snapnet(&ds.network)),
        Box::new(thmm(&ds.network)),
        Box::new(Ivmm::new(&ds.network)),
        Box::new(Seq2SeqMatcher::train(
            ds,
            Seq2SeqConfig::dmm(2001).fast_test(),
        )),
        Box::new(Lhmm::train(ds, LhmmConfig::fast_test(2001))),
    ]
}

fn point_at(ds: &Dataset, t: f64) -> CellularPoint {
    let tower = &ds.towers.towers()[0];
    CellularPoint {
        tower: TowerId(0),
        pos: tower.pos,
        t,
        smoothed: None,
    }
}

#[test]
fn all_matchers_survive_edge_trajectories() {
    let ds = Dataset::generate(&DatasetConfig::tiny_test(2001));
    let ctx = MatchContext {
        net: &ds.network,
        index: &ds.index,
        towers: &ds.towers,
    };

    let empty = CellularTrajectory::default();
    let single = CellularTrajectory {
        points: vec![point_at(&ds, 0.0)],
    };
    let pair = CellularTrajectory {
        points: vec![point_at(&ds, 0.0), point_at(&ds, 60.0)],
    };
    // Repeated identical tower observations (a parked phone).
    let parked = CellularTrajectory {
        points: (0..6).map(|i| point_at(&ds, i as f64 * 45.0)).collect(),
    };

    for mut m in all_matchers(&ds) {
        for traj in [&empty, &single, &pair, &parked] {
            let r = m.match_trajectory(&ctx, traj);
            // Every returned segment must exist.
            for &seg in &r.path.segments {
                assert!(seg.idx() < ds.network.num_segments(), "{}", m.name());
            }
            if let Some(sets) = &r.candidate_sets {
                assert_eq!(sets.len(), traj.len(), "{}", m.name());
            }
        }
    }
}

#[test]
fn all_matchers_produce_results_on_real_trajectories() {
    let ds = Dataset::generate(&DatasetConfig::tiny_test(2002));
    let ctx = MatchContext {
        net: &ds.network,
        index: &ds.index,
        towers: &ds.towers,
    };
    for mut m in all_matchers(&ds) {
        let name = m.name().to_string();
        let r = m.match_trajectory(&ctx, &ds.test[0].cellular);
        assert!(!r.path.is_empty(), "{name} returned an empty path");
    }
}

#[test]
fn matcher_names_are_stable() {
    let ds = Dataset::generate(&DatasetConfig::tiny_test(2003));
    let names: Vec<String> = all_matchers(&ds)
        .iter()
        .map(|m| m.name().to_string())
        .collect();
    assert_eq!(
        names,
        vec![
            "STM", "STM+S", "IFM", "MCM", "CLSTERS", "SNet", "THMM", "IVMM", "DMM", "LHMM"
        ]
    );
}
