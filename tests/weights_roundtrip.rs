//! Weight persistence round-trip: a model rebuilt from exported bytes must
//! score **bit-identically** to the model that produced them.
//!
//! Matching-level equivalence (same routes) already lives in `lhmm-core`'s
//! unit tests; this suite pins the stronger property the vectorized scoring
//! path relies on — `save_weights`/`load_weights` preserve every `f32`
//! exactly, so `P_O` and `P_T` evaluations through the per-trajectory
//! scorers produce the same bit patterns before and after persistence.

use lhmm::prelude::*;
use lhmm_core::transition::TrajTransScorer;
use lhmm_neural::Scratch;

#[test]
fn reloaded_weights_score_bit_identically() {
    let ds = Dataset::generate(&DatasetConfig::tiny_test(181));
    let trained = LhmmModel::train(&ds, LhmmConfig::fast_test(181));
    let bytes = trained.save_weights();
    let loaded =
        LhmmModel::load_weights(&ds, LhmmConfig::fast_test(181), &bytes).expect("load weights");

    let rec = ds
        .test
        .iter()
        .max_by_key(|r| r.cellular.len())
        .expect("non-empty test split");
    let towers = rec.cellular.towers();

    // ---------------- P_O ----------------
    let mut scored_points = 0usize;
    {
        let obs_a = trained.observation_learner().expect("trained P_O");
        let obs_b = loaded.observation_learner().expect("loaded P_O");
        let mut sa = obs_a.traj_scorer(trained.embeddings(), &towers, Scratch::new(), false);
        let mut sb = obs_b.traj_scorer(loaded.embeddings(), &towers, Scratch::new(), false);
        let (mut out_a, mut out_b) = (Vec::new(), Vec::new());
        for (i, p) in rec.cellular.points.iter().enumerate() {
            let pos = p.effective_pos();
            let segs: Vec<SegmentId> = ds
                .index
                .k_nearest(&ds.network, pos, 8, 3_000.0)
                .into_iter()
                .map(|(s, _)| s)
                .collect();
            if segs.is_empty() {
                continue;
            }
            sa.score_into(&ds.network, trained.graph(), pos, p.tower, i, &segs, &mut out_a);
            sb.score_into(&ds.network, loaded.graph(), pos, p.tower, i, &segs, &mut out_b);
            assert_eq!(out_a.len(), out_b.len());
            for (a, b) in out_a.iter().zip(&out_b) {
                assert_eq!(
                    a.to_bits(),
                    b.to_bits(),
                    "P_O diverged after reload at point {i}: {a} vs {b}"
                );
            }
            scored_points += 1;
        }
    }
    assert!(scored_points > 0, "no points scored; round-trip untested");

    // ---------------- P_T ----------------
    let trans_a = trained.transition_learner().expect("trained P_T");
    let trans_b = loaded.transition_learner().expect("loaded P_T");
    let mut ta =
        TrajTransScorer::with_scratch(trans_a, trained.embeddings(), &towers, Scratch::new(), false);
    let mut tb =
        TrajTransScorer::with_scratch(trans_b, loaded.embeddings(), &towers, Scratch::new(), false);
    let mut scored_routes = 0usize;
    for window in rec.truth.segments.windows(5).step_by(5).take(10) {
        let a = ta.transition_prob(&ds.network, 650.0, 40.0, 880.0, window);
        let b = tb.transition_prob(&ds.network, 650.0, 40.0, 880.0, window);
        assert_eq!(
            a.to_bits(),
            b.to_bits(),
            "P_T diverged after reload on route {scored_routes}: {a} vs {b}"
        );
        scored_routes += 1;
    }
    assert!(scored_routes > 0, "no routes scored; round-trip untested");
}
