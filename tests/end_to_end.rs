//! End-to-end integration: dataset generation → training → matching →
//! evaluation, across all workspace crates.

use lhmm::baselines::heuristic::{stm, stm_s};
use lhmm::core::types::{MapMatcher, MatchContext};
use lhmm::eval::runner::evaluate_matcher;
use lhmm::prelude::*;

fn tiny() -> Dataset {
    Dataset::generate(&DatasetConfig::tiny_test(1001))
}

#[test]
fn lhmm_beats_classic_stm_on_cmf50() {
    let ds = tiny();
    let mut lhmm = Lhmm::train(&ds, LhmmConfig::fast_test(1001));
    let mut stm_m = stm(&ds.network);
    let r_lhmm = evaluate_matcher(&ds, &mut lhmm, &ds.test);
    let r_stm = evaluate_matcher(&ds, &mut stm_m, &ds.test);
    // The headline result, at miniature scale: the learning-enhanced HMM
    // must beat the distance-heuristic HMM on corridor accuracy.
    assert!(
        r_lhmm.cmf50 < r_stm.cmf50,
        "LHMM cmf50 {} >= STM cmf50 {}",
        r_lhmm.cmf50,
        r_stm.cmf50
    );
    // And on hitting ratio at *equal* candidate budgets: the learned P_O
    // must locate traveled roads better than distance ranking. (The paper's
    // LHMM even wins with k=30 vs baselines at 45; the fast test config uses
    // k=10, so compare both at 10.)
    let mut stm_small = stm(&ds.network);
    stm_small.k = lhmm.config.k;
    let r_stm_small = evaluate_matcher(&ds, &mut stm_small, &ds.test);
    assert!(
        r_lhmm.hitting_ratio.unwrap() > r_stm_small.hitting_ratio.unwrap(),
        "LHMM HR {} <= STM(k=10) HR {}",
        r_lhmm.hitting_ratio.unwrap(),
        r_stm_small.hitting_ratio.unwrap()
    );
}

#[test]
fn shortcuts_help_stm_hitting_ratio_shape() {
    // Table III's STM vs STM+S comparison: shortcuts are a general
    // component; quality must not collapse and typically improves.
    let ds = tiny();
    let mut plain = stm(&ds.network);
    let mut with_s = stm_s(&ds.network);
    let r_plain = evaluate_matcher(&ds, &mut plain, &ds.test);
    let r_s = evaluate_matcher(&ds, &mut with_s, &ds.test);
    assert!(
        r_s.cmf50 <= r_plain.cmf50 + 0.05,
        "shortcuts degraded STM: {} vs {}",
        r_s.cmf50,
        r_plain.cmf50
    );
}

#[test]
fn matching_is_deterministic() {
    let ds = tiny();
    let ctx = MatchContext {
        net: &ds.network,
        index: &ds.index,
        towers: &ds.towers,
    };
    let mut a = Lhmm::train(&ds, LhmmConfig::fast_test(5));
    let mut b = Lhmm::train(&ds, LhmmConfig::fast_test(5));
    for rec in ds.test.iter().take(4) {
        let ra = a.match_trajectory(&ctx, &rec.cellular);
        let rb = b.match_trajectory(&ctx, &rec.cellular);
        assert_eq!(ra.path.segments, rb.path.segments);
    }
}

#[test]
fn matched_paths_are_contiguous_and_on_network() {
    let ds = tiny();
    let mut lhmm = Lhmm::train(&ds, LhmmConfig::fast_test(1003));
    let ctx = MatchContext {
        net: &ds.network,
        index: &ds.index,
        towers: &ds.towers,
    };
    for rec in ds.test.iter().take(8) {
        let r = lhmm.match_trajectory(&ctx, &rec.cellular);
        assert!(!r.path.is_empty());
        for &seg in &r.path.segments {
            assert!((seg.idx()) < ds.network.num_segments());
        }
        // Paths should be contiguous except across unreachable gaps, which
        // the tiny city does not produce.
        assert!(
            r.path.is_contiguous(&ds.network),
            "non-contiguous match: {:?}",
            r.path.segments
        );
    }
}
