//! Metamorphic properties of the matching pipeline: relations that must
//! hold between matches of *transformed* inputs, with no reference output
//! needed — observation-duplication invariance, streaming prefix
//! consistency, full-lag/offline equivalence, and noise-monotone shortcut
//! activation.

use lhmm::cellsim::faults::{inject, Fault};
use lhmm::cellsim::traj::CellularTrajectory;
use lhmm::core::candidates::{nearest_segments, to_candidates};
use lhmm::core::classic::{ClassicModel, ClassicObservation, ClassicTransition};
use lhmm::core::streaming::StreamingEngine;
use lhmm::core::types::{Candidate, MatchContext};
use lhmm::core::viterbi::{EngineConfig, HmmEngine};
use lhmm::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn ctx(ds: &Dataset) -> MatchContext<'_> {
    MatchContext {
        net: &ds.network,
        index: &ds.index,
        towers: &ds.towers,
    }
}

/// Duplicating every observation (same tower, position, timestamp — a
/// stuttering collector) must not materially change the matched route.
///
/// Exact path equality is *not* the relation: the Viterbi recursion
/// accumulates `P_T · P_O` terms additively, so a duplicated layer adds one
/// extra zero-length-transition term per chain and re-weights interior
/// candidates; the argmax may legitimately pick a parallel segment. What
/// duplication must never do is degrade the route: quality against ground
/// truth stays within a small band and the segment sets largely agree.
/// Shortcuts are disabled because layer counts feed their qualification
/// heuristic, which duplication intentionally perturbs.
#[test]
fn observation_duplication_preserves_route_quality() {
    let ds = Dataset::generate(&DatasetConfig::tiny_test(3101));
    let mut cfg = LhmmConfig::fast_test(3101);
    cfg.use_learned_obs = false; // classic scoring: duplication-deterministic
    cfg.use_learned_trans = false;
    cfg.shortcut_k = 0;
    let lhmm = Lhmm::train(&ds, cfg);
    let model = lhmm.model();
    let ctx = ctx(&ds);
    let mut rng = StdRng::seed_from_u64(0); // p = 1.0 draws are ignored
    for rec in ds.test.iter().take(4) {
        let doubled = inject(&rec.cellular, &Fault::Duplicate { p: 1.0 }, &mut rng);
        assert_eq!(doubled.len(), 2 * rec.cellular.len());
        let mut engine = HmmEngine::new(&ds.network, model.engine_config());
        let (orig, _) = model
            .try_match_with_engine_stats(&ctx, &rec.cellular, &mut engine)
            .expect("clean input");
        let (dup, _) = model
            .try_match_with_engine_stats(&ctx, &doubled, &mut engine)
            .expect("duplicated input");
        assert!(!dup.path.is_empty());
        let qo = evaluate_path(&ds.network, &orig.path, &rec.truth);
        let qd = evaluate_path(&ds.network, &dup.path, &rec.truth);
        assert!(
            (qd.recall - qo.recall).abs() <= 0.25,
            "duplication shifted recall: {} -> {}",
            qo.recall,
            qd.recall
        );
        let a = orig.path.segment_set();
        let b = dup.path.segment_set();
        let inter = a.intersection(&b).count() as f64;
        let union = a.union(&b).count() as f64;
        assert!(
            inter / union >= 0.5,
            "duplication rewrote the route: Jaccard {}",
            inter / union
        );
    }
}

/// The committed path only ever grows: every snapshot taken after a push is
/// a prefix of the final (flushed) path.
#[test]
fn streaming_commits_are_prefixes_of_the_final_path() {
    let ds = Dataset::generate(&DatasetConfig::tiny_test(3102));
    for (ri, rec) in ds.test.iter().take(3).enumerate() {
        let positions = rec.cellular.effective_positions();
        let mut model = ClassicModel::new(
            ClassicObservation::cellular(),
            ClassicTransition::cellular(),
            positions.clone(),
        );
        let mut stream = StreamingEngine::new(&ds.network, 3);
        let mut snapshots: Vec<Vec<SegmentId>> = Vec::new();
        for (i, p) in rec.cellular.points.iter().enumerate() {
            let pairs = nearest_segments(&ds.network, &ds.index, positions[i], 15, 3_000.0);
            if pairs.is_empty() {
                continue;
            }
            let layer = to_candidates(&mut model, i, &pairs);
            stream
                .push(positions[i], p.t, layer, &mut model)
                .expect("non-empty layer");
            snapshots.push(stream.committed().segments.clone());
        }
        let fin = stream.finish();
        for (si, snap) in snapshots.iter().enumerate() {
            assert!(
                fin.segments.starts_with(snap),
                "rec {ri}: snapshot {si} is not a prefix of the final path"
            );
        }
    }
}

/// With a lag at least as long as the trajectory, nothing commits early, so
/// fixed-lag streaming is *exactly* offline Viterbi without shortcuts —
/// byte-identical segments, across multiple trajectories.
#[test]
fn full_lag_streaming_byte_matches_offline_matcher() {
    let ds = Dataset::generate(&DatasetConfig::tiny_test(3103));
    for rec in ds.test.iter().take(4) {
        let positions = rec.cellular.effective_positions();
        let mut model = ClassicModel::new(
            ClassicObservation::cellular(),
            ClassicTransition::cellular(),
            positions.clone(),
        );
        let mut kept: Vec<usize> = Vec::new();
        let mut layers: Vec<Vec<Candidate>> = Vec::new();
        for (i, &p) in positions.iter().enumerate() {
            let pairs = nearest_segments(&ds.network, &ds.index, p, 12, 3_000.0);
            if pairs.is_empty() {
                continue;
            }
            kept.push(i);
            layers.push(to_candidates(&mut model, i, &pairs));
        }
        if kept.is_empty() {
            continue;
        }
        let pts: Vec<(Point, f64)> = kept
            .iter()
            .map(|&i| (positions[i], rec.cellular.points[i].t))
            .collect();
        let mut engine = HmmEngine::new(
            &ds.network,
            EngineConfig {
                shortcuts: 0,
                ..Default::default()
            },
        );
        let offline = engine
            .try_find_path(&ds.network, &pts, layers.clone(), &mut model)
            .expect("valid layers");

        let mut stream = StreamingEngine::new(&ds.network, pts.len() + 1);
        for (&(pos, t), layer) in pts.iter().zip(layers) {
            stream
                .push(pos, t, layer, &mut model)
                .expect("non-empty layer");
        }
        assert_eq!(stream.finish().segments, offline.path.segments);
    }
}

/// More off-road noise must never *reduce* how often Algorithm 2 fires: the
/// total shortcut activations over a test set are monotone between a clean
/// corpus and a heavily teleported one.
#[test]
fn shortcut_activation_is_monotone_in_injected_noise() {
    let ds = Dataset::generate(&DatasetConfig::tiny_test(3104));
    let mut cfg = LhmmConfig::fast_test(3104);
    cfg.use_learned_obs = false; // activation is an engine property
    cfg.use_learned_trans = false;
    let lhmm = Lhmm::train(&ds, cfg);
    let model = lhmm.model();
    let ctx = ctx(&ds);

    let total_activations = |noise: Option<f64>| -> u64 {
        let mut engine = HmmEngine::new(&ds.network, model.engine_config());
        let mut rng = StdRng::seed_from_u64(77);
        let mut total = 0;
        for rec in ds.test.iter().take(6) {
            let traj: CellularTrajectory = match noise {
                None => rec.cellular.clone(),
                Some(p) => inject(
                    &rec.cellular,
                    &Fault::Teleport {
                        p,
                        distance: 1_500.0,
                    },
                    &mut rng,
                ),
            };
            if let Ok((_, stats)) = model.try_match_with_engine_stats(&ctx, &traj, &mut engine) {
                total += stats.shortcut_activations;
            }
        }
        total
    };

    let clean = total_activations(None);
    let noisy = total_activations(Some(0.7));
    assert!(
        noisy >= clean,
        "teleport noise reduced shortcut activations: clean {clean}, noisy {noisy}"
    );
    // And the noisy corpus must actually trigger the mechanism, otherwise
    // this test pins nothing.
    assert!(noisy > 0, "no shortcut ever activated under heavy noise");
}
