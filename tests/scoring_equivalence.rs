//! Vectorized-vs-scalar scoring equivalence, end to end.
//!
//! The vectorized inference fast path (batched kernels + scratch arenas in
//! `lhmm_neural`, per-trajectory scorers in `lhmm_core`) claims *bit*
//! equality with the scalar reference implementation — not tolerance-based
//! closeness. These tests pin that claim at the highest level: the same
//! trained model matched over a full test corpus with
//! `config.scalar_scoring` toggled must produce identical matched routes
//! and identical candidate sets for every trajectory. Unit-level bitwise
//! checks live next to the kernels (`lhmm-neural`) and the scorers
//! (`lhmm-core`); this suite is the integration backstop that would catch
//! any divergence those miss (e.g. in the wiring of contexts, caches or
//! scratch reuse across trajectories).

use lhmm::prelude::*;
use lhmm_core::viterbi::HmmEngine;

fn match_corpus(model: &LhmmModel, ds: &Dataset) -> Vec<MatchResult> {
    let ctx = MatchContext {
        net: &ds.network,
        index: &ds.index,
        towers: &ds.towers,
    };
    // One engine reused across the corpus: scratch arenas and shortest-path
    // caches stay warm, which is exactly the state the fast path optimizes
    // for (and the state that must not change answers).
    let mut engine = HmmEngine::new(&ds.network, model.engine_config());
    ds.test
        .iter()
        .map(|rec| model.match_with_engine(&ctx, &rec.cellular, &mut engine))
        .collect()
}

fn assert_identical(fast: &[MatchResult], scalar: &[MatchResult]) {
    assert_eq!(fast.len(), scalar.len());
    for (i, (f, s)) in fast.iter().zip(scalar).enumerate() {
        assert_eq!(
            f.path.segments, s.path.segments,
            "matched route diverged on trajectory {i}"
        );
        assert_eq!(
            f.candidate_sets, s.candidate_sets,
            "candidate sets diverged on trajectory {i}"
        );
    }
}

/// Full (non-ablated) LHMM: learned P_O and P_T both active, so every
/// vectorized code path — context batching, candidate scoring, road
/// relevance, fusion — is exercised on every trajectory.
#[test]
fn full_lhmm_matches_identically_in_both_modes() {
    let ds = Dataset::generate(&DatasetConfig::tiny_test(171));
    let mut model = LhmmModel::train(&ds, LhmmConfig::fast_test(171));

    model.config.scalar_scoring = false;
    let fast = match_corpus(&model, &ds);
    model.config.scalar_scoring = true;
    let scalar = match_corpus(&model, &ds);

    assert!(
        fast.iter().any(|r| !r.path.is_empty()),
        "corpus produced no non-empty matches; equivalence would be vacuous"
    );
    assert_identical(&fast, &scalar);
}

/// Partially ablated variants still route their remaining learned scorer
/// through the fast path; the classic probabilities are untouched by the
/// flag, so results must again be identical.
#[test]
fn ablated_variants_match_identically_in_both_modes() {
    let ds = Dataset::generate(&DatasetConfig::tiny_test(172));
    for (obs, trans) in [(true, false), (false, true)] {
        let mut cfg = LhmmConfig::fast_test(172);
        cfg.use_learned_obs = obs;
        cfg.use_learned_trans = trans;
        let mut model = LhmmModel::train(&ds, cfg);

        model.config.scalar_scoring = false;
        let fast = match_corpus(&model, &ds);
        model.config.scalar_scoring = true;
        let scalar = match_corpus(&model, &ds);
        assert_identical(&fast, &scalar);
    }
}
