//! # LHMM — Learning-Enhanced HMM Map Matching for Cellular Trajectories
//!
//! Umbrella crate for the reproduction of *Shi et al., "LHMM: A Learning
//! Enhanced HMM Model for Cellular Trajectory Map Matching" (ICDE 2023)*.
//!
//! It re-exports every workspace crate under a stable module hierarchy so
//! downstream users can depend on a single crate:
//!
//! ```
//! use lhmm::prelude::*;
//! ```
//!
//! Crate map:
//! * [`geo`] — planar geometry primitives.
//! * [`network`] — road-network graph, spatial index, shortest paths,
//!   synthetic city generators.
//! * [`cellsim`] — cellular-positioning simulator that stands in for the
//!   paper's proprietary operator datasets.
//! * [`neural`] — from-scratch reverse-mode autograd, layers and optimizers.
//! * [`graph`] — multi-relational graph and the Het-Graph Encoder.
//! * [`core`] — observation/transition probability learners and the HMM
//!   path-finding framework with shortcuts.
//! * [`baselines`] — ten reimplemented comparison matchers.
//! * [`eval`] — precision / recall / RMF / CMF / hitting-ratio metrics and
//!   the experiment runner.
//! * [`serve`] — online matching service: session manager, dynamic
//!   micro-batching, load-shedding admission control, framed TCP protocol.

#![forbid(unsafe_code)]

pub use lhmm_baselines as baselines;
pub use lhmm_cellsim as cellsim;
pub use lhmm_core as core;
pub use lhmm_eval as eval;
pub use lhmm_geo as geo;
pub use lhmm_graph as graph;
pub use lhmm_network as network;
pub use lhmm_neural as neural;
pub use lhmm_serve as serve;

/// Common imports for applications built on LHMM.
pub mod prelude {
    pub use lhmm_cellsim::dataset::{Dataset, DatasetConfig};
    pub use lhmm_core::batch::{BatchConfig, BatchMatcher, BatchStats};
    pub use lhmm_core::lhmm::{Lhmm, LhmmConfig, LhmmModel};
    pub use lhmm_core::registry::{ModelManifest, ModelRegistry, ModelVersion, VersionedModel};
    pub use lhmm_core::types::{MapMatcher, MatchContext, MatchResult, MatchStats};
    pub use lhmm_eval::metrics::{evaluate_path, MatchQuality};
    pub use lhmm_geo::Point;
    pub use lhmm_network::backend::{SpBackend, SpHandle};
    pub use lhmm_network::graph::{RoadNetwork, SegmentId};
    pub use lhmm_network::path::Path;
    pub use lhmm_serve::{
        BatchPolicy, ClusterConfig, ClusterHandle, ClusterTopology, RejectReason,
        ServeClient, ServeConfig, ServeCtx, ServerHandle, SessionPolicy,
    };
}
